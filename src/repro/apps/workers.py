"""Polling vs blocking workers — the §2 process-scheduling scenario.

Both serve the same intermittent request stream; the only difference is how
they wait. The polling worker is what kernel bypass forces ("'burning' CPU
cores unnecessarily"); the blocking worker is what the kernel path and KOPI
allow. E6 sweeps offered load and reports core utilization and wake
latency for each.
"""

from __future__ import annotations

from typing import Generator

from ..errors import WouldBlock
from ..dataplanes.testbed import Testbed
from ..trace import STAGE_APP, STAGE_SCHED_WAKE
from .base import App


class _Worker(App):
    def __init__(self, testbed: Testbed, port: int, work_ns: int = 2_000, **kwargs):
        super().__init__(testbed, port=port, **kwargs)
        self.work_ns = work_ns
        self.served = 0

    def _serve(self, size: int) -> Generator:
        # Service *start* time, recorded before the work: the experiment
        # subtracts the known send schedule to get dispatch latency.
        self.stats.series("service_start").record(self.sim.now, float(self.served))
        core = self.tb.machine.cpus[self.proc.core_id]
        yield core.execute(
            self.tb.machine.tracer.loose(STAGE_APP, self.work_ns, label="serve"),
            "serve",
        )
        self.served += 1
        self.stats.meter("served").record(self.sim.now, size)

    def service_starts(self) -> "list[int]":
        return [t for t, _v in self.stats.series("service_start").points]


class BlockingWorker(_Worker):
    """Sleeps in recv; the scheduler wakes it on arrival."""

    def run(self) -> Generator:
        while True:
            size, _src, _sport = yield self.ep.recv(blocking=True)
            yield from self._serve(size)


class PollingWorker(_Worker):
    """Spins on non-blocking recv; never yields the core."""

    def run(self) -> Generator:
        core = self.tb.machine.cpus[self.proc.core_id]
        poll_cost = self.tb.machine.costs.poll_iteration_ns
        while True:
            try:
                size, _src, _sport = yield self.ep.recv(blocking=False)
            except WouldBlock:
                yield core.execute(
                    self.tb.machine.tracer.loose(
                        STAGE_SCHED_WAKE, poll_cost, label="poll"
                    ),
                    "poll",
                )
                continue
            yield from self._serve(size)
