"""The Norman userspace library (§4.2/§4.3).

POSIX-shaped send/recv over per-connection rings: sends post a descriptor
and ring the doorbell; receives consume directly from the RX ring. Blocking
variants go through the control plane's notification machinery instead of
spinning. Connections that fell back to the software path (§5) transparently
use the kernel stack — same API, kernel-path costs.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import EndpointClosed, UnsupportedOperation, WouldBlock
from ..net.addresses import IPv4Address
from ..net.headers import PROTO_TCP
from ..net.packet import Packet, make_tcp, make_udp
from ..sim import Signal
from ..dataplanes.base import Endpoint
from .connection import NormanConnection

Message = Tuple[int, IPv4Address, int]


class NormanEndpoint(Endpoint):
    """Application handle over one Norman connection."""

    def __init__(self, norman, conn: NormanConnection):
        super().__init__(norman, conn.proc, conn.proto, conn.port)
        self._os = norman
        self.conn = conn

    @property
    def _core(self):
        return self._os.machine.cpus[self.proc.core_id]

    @property
    def _costs(self):
        return self._os.machine.costs

    # --- connection -----------------------------------------------------

    def connect(self, dst_ip: IPv4Address, dport: int) -> Signal:
        return self._os.control.connect_peer(self.conn, dst_ip, dport)

    def close(self) -> None:
        if not self.closed:
            self._os.control.close_connection(self.conn)
        super().close()

    # --- TX ------------------------------------------------------------------

    def send(self, payload_len: int, dst: Optional[Tuple[IPv4Address, int]] = None) -> Signal:
        dst = dst or self.conn.sock.peer
        if dst is None:
            raise UnsupportedOperation("send without destination on unconnected endpoint")
        if self.conn.fallback:
            return self._os.kernel.netstack.sendto(
                self.proc, self.conn.sock, dst[0], dst[1], payload_len
            )
        pkt = self._build(dst[0], dst[1], payload_len)
        return self.send_raw(pkt)

    def send_raw(self, pkt: Packet) -> Signal:
        """Zero-copy post + doorbell. Blocks (via the tx_drained
        notification) when the TX ring is full."""
        if self.conn.fallback:
            raise UnsupportedOperation("fallback connections cannot inject raw frames")
        result = Signal("norman.send")
        pkt.meta.created_ns = self._os.machine.sim.now
        # mmio_write_cost both prices the doorbell and counts it.
        cost = self._costs.bypass_tx_pkt_ns + self._os.machine.dma.mmio_write_cost()

        def _attempt(_sig: Optional[Signal] = None) -> None:
            if self.closed:
                result.succeed(False)
                return
            if self.conn.rings.tx.try_post(pkt):
                self._os.nic.doorbell(self.conn)
                result.succeed(True)
                return
            woken = self._os.control.block_on_tx(self.conn, self.proc)
            woken.add_callback(_attempt)

        self._core.execute(cost, "norman_tx").add_callback(_attempt)
        return result

    def _build(self, dst_ip: IPv4Address, dport: int, payload_len: int) -> Packet:
        dst_mac = self._os.kernel.mac_for(dst_ip)
        maker = make_tcp if self.proto == PROTO_TCP else make_udp
        return maker(
            self._os.kernel.host_mac, dst_mac, self._os.kernel.host_ip, dst_ip,
            self.port, dport, payload_len,
        )

    # --- RX -----------------------------------------------------------------------

    def recv(self, blocking: bool = True) -> Signal:
        """Consume one message from the RX ring.

        The read cost is honest about the memory hierarchy: freshly
        DMA-written lines are cheap while the active working set fits DDIO
        and DRAM-expensive once it does not — the E8 mechanism.
        """
        if self.conn.fallback:
            return self._os.kernel.netstack.recv(self.proc, self.conn.sock, blocking=blocking)
        result = Signal("norman.recv")

        def _attempt(_sig: Optional[Signal] = None) -> None:
            if self.closed:
                result.fail(EndpointClosed(f"endpoint :{self.port} closed"))
                return
            pkt = self.conn.rings.rx.try_consume()
            if pkt is not None:
                cost = self._costs.bypass_rx_pkt_ns + self._read_cost(pkt)
                self._core.execute(cost, "norman_rx").add_callback(
                    lambda _s: result.succeed(_message_of(pkt))
                )
                return
            if not blocking:
                result.fail(WouldBlock(f"ring empty on :{self.port}"))
                return
            woken = self._os.control.block_on_rx(self.conn, self.proc)
            woken.add_callback(_attempt)

        _attempt()
        return result

    def _read_cost(self, pkt: Packet) -> int:
        lines = pkt.meta.notes.get("lines")
        machine = self._os.machine
        if machine.llc is not None and lines:
            costs = self._costs
            total = 0
            for addr in lines:
                total += costs.llc_hit_ns if machine.llc.cpu_read(addr) else costs.dram_ns
            return total
        n_lines = len(lines) if lines else 2
        return machine.ddio_model.read_cost_ns(
            self._os.control.active_hot_bytes(), n_lines
        )


def _message_of(pkt: Packet) -> Message:
    ft = pkt.five_tuple
    if ft is None:
        return (pkt.wire_len, IPv4Address(0), 0)
    return (pkt.payload_len, ft.src_ip, ft.sport)
