"""Users, processes, the process table, and cgroups."""

import pytest

from repro.errors import KernelError
from repro.kernel import (
    Cgroup,
    CgroupTree,
    PROC_BLOCKED,
    PROC_EXITED,
    PROC_RUNNING,
    Process,
    ProcessTable,
    User,
    UserTable,
)
from repro.kernel.process import owner_info


class TestUserTable:
    def test_root_always_exists(self):
        users = UserTable()
        assert users.by_uid(0).name == "root"
        assert users.by_name("root").is_root

    def test_add_allocates_uids_from_1000(self):
        users = UserTable()
        bob = users.add("bob")
        charlie = users.add("charlie")
        assert bob.uid == 1000
        assert charlie.uid == 1001

    def test_duplicate_rejected(self):
        users = UserTable()
        users.add("bob")
        with pytest.raises(KernelError):
            users.add("bob")
        with pytest.raises(KernelError):
            users.add("bob2", uid=1000)

    def test_lookup_missing(self):
        users = UserTable()
        with pytest.raises(KernelError):
            users.by_uid(42)
        with pytest.raises(KernelError):
            users.by_name("nobody")

    def test_contains_and_len(self):
        users = UserTable()
        users.add("bob")
        assert "bob" in users
        assert "eve" not in users
        assert len(users) == 2


class TestProcess:
    def test_identity(self):
        p = Process(pid=7, comm="postgres", user=User(1000, "bob"))
        assert (p.pid, p.uid, p.comm) == (7, 1000, "postgres")
        assert p.state == PROC_RUNNING

    def test_state_transitions(self):
        p = Process(pid=1, comm="x", user=User(0, "root"))
        p.set_state(PROC_BLOCKED)
        assert p.blocked_count == 1
        p.set_state(PROC_RUNNING)
        p.set_state(PROC_EXITED)
        assert not p.alive
        with pytest.raises(KernelError):
            p.set_state(PROC_RUNNING)

    def test_validation(self):
        with pytest.raises(KernelError):
            Process(pid=0, comm="x", user=User(0, "root"))
        with pytest.raises(KernelError):
            Process(pid=1, comm="", user=User(0, "root"))
        with pytest.raises(KernelError):
            Process(pid=1, comm="x", user=User(0, "root")).set_state("zombie")

    def test_owner_info(self):
        p = Process(pid=3, comm="mysql", user=User(1001, "charlie"))
        assert owner_info(p) == (3, 1001, "mysql")
        assert owner_info(None) is None


class TestProcessTable:
    def test_spawn_allocates_sequential_pids(self):
        table = ProcessTable()
        root = User(0, "root")
        a = table.spawn("a", root)
        b = table.spawn("b", root)
        assert (a.pid, b.pid) == (1, 2)
        assert table.get(1) is a

    def test_exit_hides_from_listing(self):
        table = ProcessTable()
        root = User(0, "root")
        p = table.spawn("daemon", root)
        table.spawn("other", root)
        table.exit(p.pid)
        assert len(table) == 1
        assert p not in table.processes()
        assert p in table.processes(include_exited=True)

    def test_lookup_by_comm_and_uid(self):
        table = ProcessTable()
        bob = User(1000, "bob")
        charlie = User(1001, "charlie")
        table.spawn("postgres", bob)
        table.spawn("postgres", bob)
        table.spawn("mysql", charlie)
        assert len(table.by_comm("postgres")) == 2
        assert len(table.by_uid(1001)) == 1

    def test_missing_pid(self):
        with pytest.raises(KernelError):
            ProcessTable().get(99)
        assert not ProcessTable().exists(99)


class TestCgroups:
    def test_root_exists_with_classid_zero(self):
        tree = CgroupTree()
        assert tree.get("/").classid == 0

    def test_create_and_assign(self):
        tree = CgroupTree()
        games = tree.create("/games")
        p = Process(pid=5, comm="game", user=User(1000, "bob"))
        tree.assign(p, "/games")
        assert p.cgroup_path == "/games"
        assert tree.group_of(5) is games
        assert tree.classid_of(5) == games.classid

    def test_reassignment_moves_pid(self):
        tree = CgroupTree()
        tree.create("/a")
        tree.create("/b")
        p = Process(pid=5, comm="x", user=User(0, "root"))
        tree.assign(p, "/a")
        tree.assign(p, "/b")
        assert 5 not in tree.get("/a").pids
        assert 5 in tree.get("/b").pids

    def test_unassigned_pid_is_in_root(self):
        tree = CgroupTree()
        assert tree.group_of(1234).path == "/"
        assert tree.classid_of(1234) == 0

    def test_classids_unique(self):
        tree = CgroupTree()
        ids = {tree.create(f"/g{i}").classid for i in range(10)}
        assert len(ids) == 10

    def test_by_classid(self):
        tree = CgroupTree()
        g = tree.create("/games")
        assert tree.by_classid(g.classid) is g
        assert tree.by_classid(0xDEAD) is None

    def test_invalid_paths(self):
        tree = CgroupTree()
        with pytest.raises(KernelError):
            tree.create("games")
        with pytest.raises(KernelError):
            tree.create("/")
        tree.create("/x")
        with pytest.raises(KernelError):
            tree.create("/x")
        with pytest.raises(KernelError):
            tree.get("/missing")
