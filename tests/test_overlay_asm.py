"""Overlay assembler and verifier."""

import pytest

from repro.errors import AssemblerError, VerifierError
from repro.overlay import Instr, Program, assemble, verify
from repro.overlay.isa import OP_ACCEPT, OP_DROP, OP_JMP, OP_LDI


class TestAssembler:
    def test_simple_program(self):
        prog = assemble(
            """
            ; block postgres port
                ldf r0, l4.dport
                jne r0, 5432, allow
                drop
            allow:
                accept
            """
        )
        assert len(prog) == 4
        assert prog.instrs[0].op == "ldf"
        assert prog.instrs[1].target == 3  # label resolved

    def test_comments_and_blank_lines_ignored(self):
        prog = assemble("# a comment\n\n   accept ; trailing\n")
        assert len(prog) == 1

    def test_hex_immediates(self):
        prog = assemble("ldi r2, 0x1F\naccept")
        assert prog.instrs[0].src == ("imm", 31)

    def test_register_operands(self):
        prog = assemble("mov r1, r0\nadd r1, r2\nadd r1, 7\naccept")
        assert prog.instrs[0].src == ("reg", 0)
        assert prog.instrs[1].src == ("reg", 2)
        assert prog.instrs[2].src == ("imm", 7)

    def test_label_on_same_line(self):
        prog = assemble("start: ldi r0, 1\njmp end\nend: accept")
        assert prog.instrs[1].target == 2

    def test_meter_and_counter_encoding(self):
        prog = assemble("meter 0, r3\ncnt 2\naccept", n_counters=3, n_meters=1)
        assert prog.instrs[0].index == 0 and prog.instrs[0].rd == 3
        assert prog.instrs[1].index == 2

    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate r0",              # unknown op
            "ldf r9, l4.dport\naccept",   # bad register
            "ldf r0, tcp.window\naccept", # unknown field
            "jmp nowhere\naccept",        # unknown label
            "ldi r0\naccept",             # wrong arity
            "jeq r0, xyz, done\ndone: accept",  # bad immediate
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(AssemblerError):
            assemble(bad)

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x: accept\nx: drop")

    def test_disassembly_roundtrip_shape(self):
        prog = assemble("ldf r0, l4.dport\njeq r0, 22, ssh\ndrop\nssh: accept")
        text = prog.disassemble()
        assert "ldf r0 l4.dport" in text
        assert "@3" in text


class TestVerifier:
    def good(self):
        return assemble("ldf r0, l4.dport\njeq r0, 22, ok\ndrop\nok: accept")

    def test_accepts_valid_program(self):
        verify(self.good())

    def test_rejects_empty(self):
        with pytest.raises(VerifierError):
            verify(Program(instrs=()))

    def test_rejects_oversized(self):
        with pytest.raises(VerifierError, match="too large"):
            verify(self.good(), max_instrs=2)

    def test_rejects_backward_jump(self):
        prog = Program(
            instrs=(
                Instr(op=OP_LDI, rd=0, src=("imm", 1)),
                Instr(op=OP_JMP, target=0),  # hand-built back edge
                Instr(op=OP_ACCEPT),
            )
        )
        with pytest.raises(VerifierError, match="forward-only"):
            verify(prog)

    def test_rejects_self_jump(self):
        prog = Program(instrs=(Instr(op=OP_JMP, target=0), Instr(op=OP_ACCEPT)))
        with pytest.raises(VerifierError, match="forward-only"):
            verify(prog)

    def test_rejects_out_of_bounds_jump(self):
        prog = Program(instrs=(Instr(op=OP_JMP, target=5), Instr(op=OP_ACCEPT)))
        with pytest.raises(VerifierError, match="out of bounds"):
            verify(prog)

    def test_rejects_fallthrough_end(self):
        prog = assemble("ldi r0, 1\naccept")
        bad = Program(instrs=prog.instrs[:1])  # ends on ldi
        with pytest.raises(VerifierError, match="fall off"):
            verify(bad)

    def test_rejects_undeclared_counter(self):
        prog = assemble("cnt 0\naccept", n_counters=0)
        with pytest.raises(VerifierError, match="counter"):
            verify(prog)

    def test_rejects_undeclared_meter(self):
        prog = assemble("meter 1, r0\naccept", n_meters=1)
        with pytest.raises(VerifierError, match="meter"):
            verify(prog)

    def test_rejects_excess_resources(self):
        prog = assemble("accept", n_counters=100)
        with pytest.raises(VerifierError, match="counters"):
            verify(prog, max_counters=10)

    def test_rejects_tap_out_of_range(self):
        prog = assemble("mirror 9\naccept")
        with pytest.raises(VerifierError, match="tap"):
            verify(prog, max_taps=8)

    def test_rejects_oversized_immediate(self):
        prog = Program(instrs=(Instr(op=OP_LDI, rd=0, src=("imm", 1 << 33)), Instr(op=OP_DROP)))
        with pytest.raises(VerifierError, match="32-bit"):
            verify(prog)
