"""E2 — §1: virtual vs physical vs on-path interposition.

Same policy (an 8-rule filter chain the traffic must traverse), three
placements that can enforce it — in-kernel (virtual movement), sidecar core
(physical movement), on-NIC (KOPI, no movement) — plus bypass as the
"no interposition possible" reference. Expected shape: with interposition
active, kernel pays syscalls+copies, sidecar pays coherence lines + a
second core, KOPI pays neither; transfers per packet drop from two to one.
"""

from __future__ import annotations

from typing import List

from ..config import DEFAULT_COSTS, CostModel
from ..core import NormanOS
from ..dataplanes import (
    BypassDataplane,
    KernelPathDataplane,
    SidecarDataplane,
    Testbed,
)
from ..kernel.netfilter import ACCEPT, CHAIN_OUTPUT, NetfilterRule
from .common import Row, fmt_table, run_bulk_tx

N_RULES = 8
DEFAULT_COUNT = 300
PAYLOAD = 1_458


def _install_rules(tb: Testbed) -> None:
    """A realistic small chain: N-1 non-matching specific rules, then an
    accept-all (traffic walks the whole chain)."""
    for i in range(N_RULES - 1):
        tb.dataplane.install_filter_rule(
            NetfilterRule(verdict=ACCEPT, chain=CHAIN_OUTPUT, dport=10_000 + i,
                          sport=1 + i)
        )
    tb.dataplane.install_filter_rule(
        NetfilterRule(verdict=ACCEPT, chain=CHAIN_OUTPUT)
    )


PLACEMENTS = (
    (KernelPathDataplane, "virtual (user->kernel)", _install_rules),
    (SidecarDataplane, "physical (core->core)", _install_rules),
    (NormanOS, "on-path (NIC)", _install_rules),
    (BypassDataplane, "none (cannot interpose)", None),
)


def run_e2(count: int = DEFAULT_COUNT, costs: CostModel = DEFAULT_COSTS) -> List[Row]:
    rows: List[Row] = []
    for plane_cls, movement, setup in PLACEMENTS:
        r = run_bulk_tx(plane_cls, PAYLOAD, count, costs=costs, setup=setup)
        moves = r.pop("movements")
        sent = max(int(r["delivered"]), 1)
        rows.append(
            {
                "plane": r["plane"],
                "movement": movement,
                "interposed": setup is not None,
                "goodput_gbps": r["goodput_gbps"],
                "host_cpu_ns_per_pkt": r["host_cpu_ns_per_pkt"],
                "latency_us_mean": r["latency_us_mean"],
                "syscalls_per_pkt": moves.get("virtual", 0) / sent,
                "coh_lines_per_pkt": moves.get("physical", 0) / sent,
            }
        )
    return rows


def headline(rows: List[Row]) -> dict:
    by_plane = {r["plane"]: r for r in rows}
    return {
        "kernel_cpu_vs_kopi": (
            by_plane["kernel"]["host_cpu_ns_per_pkt"]
            / max(by_plane["kopi"]["host_cpu_ns_per_pkt"], 1e-9)
        ),
        "sidecar_cpu_vs_kopi": (
            by_plane["sidecar"]["host_cpu_ns_per_pkt"]
            / max(by_plane["kopi"]["host_cpu_ns_per_pkt"], 1e-9)
        ),
        "kopi_matches_bypass": abs(
            by_plane["kopi"]["goodput_gbps"] - by_plane["bypass"]["goodput_gbps"]
        ) / max(by_plane["bypass"]["goodput_gbps"], 1e-9),
    }


def main() -> str:
    rows = run_e2()
    h = headline(rows)
    return "\n".join(
        [
            fmt_table(rows),
            "",
            f"headline: with identical policies, kernel placement costs "
            f"{h['kernel_cpu_vs_kopi']:.1f}x KOPI host CPU per packet, sidecar "
            f"{h['sidecar_cpu_vs_kopi']:.1f}x; KOPI goodput is within "
            f"{100 * h['kopi_matches_bypass']:.1f}% of uninterposed bypass",
        ]
    )


if __name__ == "__main__":
    print(main())
