"""netstat analogue.

Joins the socket table against the process table — the tool §1 names as
impossible for a hypervisor to implement, because it "requires access not
just to network traffic but also to other kernel datastructures including
the process table". It works under the kernel path and under KOPI (whose
connections register kernel sockets at setup); under raw bypass the kernel
socket table is empty and the listing is silent about every active flow.
"""

from __future__ import annotations

from typing import List

from ..net.headers import PROTO_TCP, PROTO_UDP

_PROTO_NAMES = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}


class Netstat:
    def __init__(self, kernel):
        self.kernel = kernel

    def __call__(self) -> str:
        header = f"{'Proto':<6}{'Local':<22}{'Peer':<22}{'State':<13}{'PID/Program':<20}{'User'}"
        lines: List[str] = [header]
        for sock in self.kernel.sockets.sockets():
            local = f"{self.kernel.host_ip}:{sock.port}"
            peer = f"{sock.peer[0]}:{sock.peer[1]}" if sock.peer else "*:*"
            owner = f"{sock.owner.pid}/{sock.owner.comm}"
            lines.append(
                f"{_PROTO_NAMES.get(sock.proto, str(sock.proto)):<6}"
                f"{local:<22}{peer:<22}{sock.state:<13}{owner:<20}{sock.owner.user.name}"
            )
        return "\n".join(lines)

    def rows(self) -> int:
        """Number of listed sockets (excludes the header)."""
        return len(self.kernel.sockets.sockets())
