"""E14 — policy churn bench: commit latency per plane, stale window, drops.

Replays the E14 sweep and asserts its acceptance shape:

* Kernel and sidecar installs are synchronous — the engine records the
  modeled ~10 us write and **zero** stale evaluations, at every churn rate.
* KOPI commits are ~50 us overlay loads; at the fastest churn the engine
  counts packets that ran under the previous program (stale but atomic).
* Bitstream-granularity commits take ~2 s with the NIC offline — ingress
  drops on the floor — while overlay-granularity commits never stop
  traffic. That contrast is the §4.4 argument in one table.

Writes the JSON artifact next to the E12/E13 ones.
"""

import json
from pathlib import Path

from repro.experiments.common import fmt_table
from repro.experiments.e14_policy_churn import (
    COLUMNS,
    UPGRADE_COLUMNS,
    headline,
    run_e14,
    run_e14_upgrade,
)

ARTIFACT = Path(__file__).parent / "artifacts" / "e14_policy_churn.json"


def test_e14_policy_churn(once):
    rows = once(run_e14, count=200, intervals=(None, 50_000, 10_000))
    print("\n" + fmt_table(rows, columns=COLUMNS))
    h = headline(rows)

    # Acceptance: synchronous planes never run a packet on stale policy and
    # pay the modeled kernel write (~10 us) per commit.
    assert h["sync_planes_stale_evals"] == 0
    assert 9.0 <= h["sync_install_us_mean"] <= 11.0
    # KOPI's enforcing copy is an overlay slot: every commit is an async
    # ~50 us load, and at the fastest churn some packets run stale.
    assert h["kopi_install_us_mean"] >= 50.0
    # Churn is an unrelated rule: goodput barely moves on any plane.
    assert h["max_goodput_delta_pct"] < 5.0

    churn = [r for r in rows if r["interval_us"]]
    for row in churn:
        assert row["commits"] > 0, row
        if row["plane"] in ("kernel", "sidecar"):
            assert row["stale_evals"] == 0, row

    upgrade_rows = run_e14_upgrade()
    print("\n" + fmt_table(upgrade_rows, columns=UPGRADE_COLUMNS))
    by_mech = {r["mechanism"]: r for r in upgrade_rows}
    overlay = by_mech["overlay load"]
    bitstream = by_mech["bitstream upgrade"]
    # Overlay loads commit in ~50 us without dropping a single arrival.
    assert overlay["commit_ms"] < 1.0
    assert overlay["offline_rx_drops"] == 0
    # A full image replacement is one ~2 s commit with the NIC offline.
    assert bitstream["commit_ms"] >= 2_000.0
    assert bitstream["offline_rx_drops"] > 0

    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(
        json.dumps(
            {"headline": h, "churn": rows, "granularity": upgrade_rows},
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {ARTIFACT}")
