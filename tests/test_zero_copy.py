"""Copy accounting and copy elision (E13).

The CopyLedger must be purely observational (attaching it changes nothing),
elision modes must only trade per-byte copy cost for their fixed pin cost,
and with the modes off every elision counter stays at zero.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import BulkSender
from repro.apps.echo import SinkServer
from repro.config import DEFAULT_COSTS
from repro.dataplanes import KernelPathDataplane, SidecarDataplane, Testbed
from repro.host.copies import (
    CPU_COPY_LAYERS,
    LAYER_COHERENCE,
    LAYER_DMA,
    LAYER_DMA_DIRECT,
    LAYER_KERNEL_RX,
    LAYER_KERNEL_TX,
    CopyLedger,
)

ZC_COSTS = DEFAULT_COSTS.replace(tx_zerocopy=True, rx_zerocopy=True)


class TestCopyLedger:
    def test_charge_accumulates(self):
        led = CopyLedger()
        led.charge(LAYER_KERNEL_TX, 1_000, 60)
        led.charge(LAYER_KERNEL_TX, 500, 30, ops=2)
        entry = led.layer(LAYER_KERNEL_TX)
        assert entry.bytes_copied == 1_500
        assert entry.copies == 3
        assert entry.ns_copying == 90
        assert entry.bytes_elided == 0

    def test_elide_accumulates_separately(self):
        led = CopyLedger()
        led.elide(LAYER_KERNEL_TX, 4_096, 850)
        entry = led.layer(LAYER_KERNEL_TX)
        assert entry.bytes_copied == 0
        assert entry.bytes_elided == 4_096
        assert entry.ns_elision_overhead == 850

    def test_negative_entries_rejected(self):
        led = CopyLedger()
        with pytest.raises(ValueError):
            led.charge(LAYER_DMA, -1, 0)
        with pytest.raises(ValueError):
            led.elide(LAYER_DMA, 1, -1)

    def test_layer_selection(self):
        led = CopyLedger()
        led.charge(LAYER_KERNEL_TX, 100, 6)
        led.charge(LAYER_COHERENCE, 200, 12)
        led.charge(LAYER_DMA_DIRECT, 1_000, 0)
        assert led.cpu_bytes_copied() == 300
        assert led.bytes_copied() == 1_300
        assert led.bytes_copied((LAYER_DMA_DIRECT,)) == 1_000

    def test_snapshot_flat_and_sorted(self):
        led = CopyLedger()
        led.charge(LAYER_KERNEL_RX, 64, 4)
        snap = led.snapshot()
        assert snap["kernel_rx.bytes_copied"] == 64
        assert snap["kernel_rx.copies"] == 1

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(CPU_COPY_LAYERS + (LAYER_DMA, LAYER_DMA_DIRECT)),
                st.booleans(),
                st.integers(min_value=0, max_value=1 << 20),
                st.integers(min_value=0, max_value=1 << 20),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_totals_never_negative(self, entries):
        led = CopyLedger()
        for layer, is_elide, nbytes, ns in entries:
            if is_elide:
                led.elide(layer, nbytes, ns)
            else:
                led.charge(layer, nbytes, ns)
        assert led.bytes_copied() >= 0
        assert led.ns_copying() >= 0
        assert led.bytes_elided() >= 0
        assert led.elision_overhead_ns() >= 0
        assert all(v >= 0 for v in led.snapshot().values())


class TestElisionCostModel:
    def test_break_even_brackets_fixed_cost(self):
        be = DEFAULT_COSTS.zc_tx_break_even_bytes
        fixed = DEFAULT_COSTS.zc_tx_pin_ns + DEFAULT_COSTS.zc_tx_completion_ns
        assert DEFAULT_COSTS.copy_ns(be) >= fixed
        # copy_ns rounds to whole ns, so sizes just below break-even may
        # tie with the fixed cost — but never beat it.
        assert DEFAULT_COSTS.copy_ns(be - 1) <= fixed
        assert DEFAULT_COSTS.copy_ns(be // 2) < fixed

    @given(st.integers(min_value=1, max_value=1 << 20))
    @settings(max_examples=200, deadline=None)
    def test_crossover_is_exactly_break_even(self, nbytes):
        """zerocopy TX cost <= copy cost iff the payload reaches break-even."""
        zc = ZC_COSTS.zc_tx_ns(nbytes)
        copy = ZC_COSTS.copy_ns(nbytes)
        if nbytes >= ZC_COSTS.zc_tx_break_even_bytes:
            assert zc <= copy
        else:
            # Whole-ns rounding lets sizes just below break-even tie.
            assert zc >= copy

    def test_zero_length_ops_cost_nothing(self):
        assert ZC_COSTS.zc_tx_ns(0) == 0
        assert ZC_COSTS.zc_rx_ns(0) == 0


def _bulk_run(costs, payload_len=32_768, count=16):
    tb = Testbed(KernelPathDataplane, costs=costs)
    app = BulkSender(tb, comm="bulk", user="bob", core_id=1,
                     payload_len=payload_len, count=count)
    app.start()
    tb.run_all()
    return tb, app


class TestKernelElision:
    def test_modes_off_means_zero_elision(self):
        tb, app = _bulk_run(DEFAULT_COSTS)
        led = tb.machine.copies
        assert led.bytes_elided() == 0
        assert led.elision_overhead_ns() == 0
        assert led.layer(LAYER_KERNEL_TX).bytes_copied == 32_768 * app.sent

    def test_tx_elision_moves_bytes_to_elided(self):
        tb, app = _bulk_run(ZC_COSTS)
        led = tb.machine.copies
        assert led.layer(LAYER_KERNEL_TX).bytes_copied == 0
        assert led.layer(LAYER_KERNEL_TX).bytes_elided == 32_768 * app.sent
        assert led.layer(LAYER_KERNEL_TX).ns_elision_overhead == 850 * app.sent

    def test_same_event_structure_both_modes(self):
        """Elision changes costs, never the event graph: identical runs
        fire the same number of events and deliver the same packets."""
        tb_cp, app_cp = _bulk_run(DEFAULT_COSTS)
        tb_zc, app_zc = _bulk_run(ZC_COSTS)
        assert tb_cp.sim.events_fired == tb_zc.sim.events_fired
        assert len(tb_cp.peer.received) == len(tb_zc.peer.received)

    def test_crossover_on_app_cpu(self):
        big_cp, _ = _bulk_run(DEFAULT_COSTS, payload_len=32_768)
        big_zc, _ = _bulk_run(ZC_COSTS, payload_len=32_768)
        small_cp, _ = _bulk_run(DEFAULT_COSTS, payload_len=64)
        small_zc, _ = _bulk_run(ZC_COSTS, payload_len=64)
        # Large messages: eliding the copy wins CPU.
        assert big_zc.machine.cpus[1].busy_ns < big_cp.machine.cpus[1].busy_ns
        # Small messages: pinning costs more than the copy it avoided.
        assert small_zc.machine.cpus[1].busy_ns > small_cp.machine.cpus[1].busy_ns

    def test_per_socket_counters(self):
        tb, app = _bulk_run(ZC_COSTS, count=8)
        sock = tb.kernel.sockets.sockets_of(app.proc.pid)[0]
        assert sock.tx_elided_bytes == 32_768 * app.sent
        assert sock.tx_copied_bytes == 0

    def test_rx_elision(self):
        for costs, expect_copied in ((DEFAULT_COSTS, True), (ZC_COSTS, False)):
            tb = Testbed(KernelPathDataplane, costs=costs)
            sink = SinkServer(tb, port=9_000, comm="sink", user="bob", core_id=1)
            sink.start()
            for i in range(8):
                tb.sim.at(i * 25_000, tb.peer.send_udp, 7_000, 9_000, 16_384)
            tb.run_all()
            led = tb.machine.copies
            assert sink.messages == 8
            if expect_copied:
                assert led.layer(LAYER_KERNEL_RX).bytes_copied == 16_384 * 8
                assert led.layer(LAYER_KERNEL_RX).bytes_elided == 0
            else:
                assert led.layer(LAYER_KERNEL_RX).bytes_copied == 0
                assert led.layer(LAYER_KERNEL_RX).bytes_elided == 16_384 * 8


class TestSidecarUnaffected:
    def test_coherence_copies_identical_under_elision(self):
        """The sidecar's movement is physical (coherence lines), not a
        user/kernel copy — kernel zero-copy flags must not change it."""
        results = {}
        for mode, costs in (("copy", DEFAULT_COSTS), ("zerocopy", ZC_COSTS)):
            tb = Testbed(SidecarDataplane, costs=costs)
            app = BulkSender(tb, comm="bulk", user="bob", core_id=1,
                             payload_len=16_384, count=16)
            app.start()
            tb.run_all()
            entry = tb.machine.copies.layer(LAYER_COHERENCE)
            results[mode] = (
                entry.bytes_copied, entry.ns_copying,
                tb.machine.cpus.total_busy_ns(),
            )
            assert entry.bytes_copied > 0
            assert tb.machine.copies.bytes_elided() == 0
        assert results["copy"] == results["zerocopy"]
