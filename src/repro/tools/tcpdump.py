"""tcpdump analogue.

Filter expressions are a pcap-filter subset: ``arp``, ``tcp``, ``udp``,
``port N``, ``src port N``, ``dst port N``, ``host A.B.C.D``, combined with
``and``. An empty expression captures everything.

Output lines mimic tcpdump, with one KOPI-only extension: when the capture
backend attributes packets, each line is suffixed with
``[pid=… uid=… comm=…]`` — the §2 debugging capability in one glance.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .. import units
from ..errors import ToolError
from ..net.headers import PROTO_TCP, PROTO_UDP
from ..net.addresses import IPv4Address
from ..net.packet import Packet
from ..dataplanes.base import CaptureSession, Dataplane

Predicate = Callable[[Packet], bool]


def compile_filter(expr: str) -> Predicate:
    """Compile a filter expression to a packet predicate."""
    expr = expr.strip()
    if not expr:
        return lambda _pkt: True
    clauses = [c.strip() for c in expr.split(" and ")]
    predicates = [_compile_clause(c) for c in clauses]

    def combined(pkt: Packet) -> bool:
        return all(p(pkt) for p in predicates)

    return combined


def _compile_clause(clause: str) -> Predicate:
    tokens = clause.split()
    if tokens == ["arp"]:
        return lambda p: p.is_arp
    if tokens == ["tcp"]:
        return lambda p: p.five_tuple is not None and p.five_tuple.proto == PROTO_TCP
    if tokens == ["udp"]:
        return lambda p: p.five_tuple is not None and p.five_tuple.proto == PROTO_UDP
    if len(tokens) == 2 and tokens[0] == "port":
        port = _port(tokens[1])
        return lambda p: p.five_tuple is not None and port in (
            p.five_tuple.sport, p.five_tuple.dport
        )
    if len(tokens) == 3 and tokens[1] == "port" and tokens[0] in ("src", "dst"):
        port = _port(tokens[2])
        if tokens[0] == "src":
            return lambda p: p.five_tuple is not None and p.five_tuple.sport == port
        return lambda p: p.five_tuple is not None and p.five_tuple.dport == port
    if len(tokens) == 2 and tokens[0] == "host":
        ip = IPv4Address.parse(tokens[1])
        return lambda p: p.five_tuple is not None and ip in (
            p.five_tuple.src_ip, p.five_tuple.dst_ip
        )
    raise ToolError(f"tcpdump: cannot parse clause {clause!r}")


def _port(text: str) -> int:
    try:
        return int(text)
    except ValueError as exc:
        raise ToolError(f"tcpdump: bad port {text!r}") from exc


class Tcpdump:
    """Start/stop captures and format their contents."""

    def __init__(self, dataplane: Dataplane):
        self.dataplane = dataplane

    def start(self, expr: str = "", name: str = "tcpdump") -> CaptureSession:
        """May raise UnsupportedOperation — e.g. under kernel bypass."""
        return self.dataplane.start_capture(match=compile_filter(expr), name=name)

    def format(self, session: CaptureSession) -> str:
        lines: List[str] = []
        for pkt in session.packets:
            stamp = units.fmt_time(pkt.meta.delivered_ns or pkt.meta.created_ns)
            line = f"{stamp}  {pkt.summary()}"
            owner = self.dataplane.attribution_of(pkt)
            if owner is not None:
                pid, uid, comm = owner
                line += f"  [pid={pid} uid={uid} comm={comm}]"
            lines.append(line)
        footer = f"{len(session.packets)} packets captured"
        return "\n".join(lines + [footer])

    def save_pcap(self, session: CaptureSession, path: str) -> Optional[str]:
        """Write the capture as a real pcap file when the backend kept one."""
        if session.pcap is None:
            return None
        session.pcap.save(path)
        return path
