"""E23 — rack-scale fast-forward: end-to-end fluid epochs across the
switch hop.

Before this PR a cross-host flow on the :class:`TwoHostTestbed` demoted to
packet-exact the moment it touched the wire: host B's RX side could go
fluid (PR 6), but every send still ran host A's full TX chain, the uplink,
the switch, and the downlink as discrete events. With
``CostModel.ff_cross_machine`` a :class:`~repro.sim.fastforward.RackFastForward`
coordinator binds the sender's TX profile (PR 7), the switch-hop wire
span, and the receiver's RX profile into one end-to-end
:class:`~repro.sim.fastforward.CrossMachineFlow`: promotion waits until
*both* stacks' verdict caches are steady and the switch path is frozen
(learned port, no match-action rules), and either side's demotion
boundary — or any switch-state change — demotes the whole flow before the
boundary's effect is simulated. Two legs defend it:

* **(a) fidelity parity** — an A→switch→B workload (spaced single sends,
  drained by the receiving application) runs twice from identical
  schedules: packet-exact vs cross-machine fluid. Every counted
  observable must match *exactly*: delivered messages, both hosts' NIC
  packet counters, doorbell MMIO writes, both copy ledgers (TX DMA on A,
  DMA-direct on B), both verdict caches' hit/miss counters, the qdisc
  transit counters, switch frame/flood counters, and both links' packet
  and byte meters. Modeled CPU time agrees within
  ``CostModel.ff_tolerance``; trace-span conservation status per host
  must agree between the legs (cross-host TX contexts are closed at the
  far end of the *uplink*, then the downlink's wire time lands on the
  closed context — a pre-existing exact-mode property that fluid replay
  reproduces by carrying the downlink span in the extended profile).
* **(b) wall-clock crossover** — 10k+ cross-host connections. The
  baseline is this repo's previous best: ``fast_forward`` on but
  ``ff_cross_machine`` off, i.e. *demote-at-wire* (B's RX absorbs
  arrivals, A still simulates every send packet-exact through the switch).
  The hybrid leg warms every flow to its end-to-end binding, then absorbs
  the schedule in bulk and flushes through the fluid switch path. The
  headline is the packets-per-wall-second ratio, required >= 5x.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..config import DEFAULT_COSTS, CostModel
from ..core import NormanOS
from ..dataplanes.multihost import (
    HOST_A_IP,
    HOST_B_IP,
    TwoHostTestbed,
)
from ..host.copies import LAYER_DMA, LAYER_DMA_DIRECT
from ..net.flow import FiveTuple
from ..net.headers import PROTO_UDP
from .common import Row, fmt_table
from .e21_fidelity_crossover import PARITY_COLUMNS

PAYLOAD = 1_458
PARITY_CONNS = 128
PARITY_ROUNDS = 6
SENDS_PER_ROUND = 4

CROSS_CONNS = 10_000
CROSS_BULK = 64
CROSS_ROUNDS = 4
PROBE_CONNS = 512
PROBE_ROUNDS = 2

#: Port pools: B listens, A sends from its own bound ports.
B_PORT_BASE = 2_000
A_PORT_BASE = 22_000

#: Spacing between consecutive sends across the population — wide enough
#: that each send's TX chain (doorbell → PCIe fetch → pipeline → wire →
#: switch → downlink) drains before the next begins, so rings, qdisc, and
#: links stay empty: the steady state the end-to-end profile captures.
SEND_GAP_NS = 2_000

#: Counters that must match exactly between the parity legs.
EXACT_KEYS = (
    "b_delivered",
    "a_tx_pkts", "b_rx_pkts",
    "a_mmio_writes",
    "a_dma_bytes", "a_dma_ops", "b_dma_bytes", "b_dma_ops",
    "a_fp_hits", "a_fp_misses", "b_fp_hits", "b_fp_misses",
    "a_qdisc_enqueued", "a_qdisc_emitted",
    "switch_frames", "switch_flooded",
    "uplink_sent", "uplink_bytes", "downlink_sent", "downlink_bytes",
)
#: Modeled-time observables compared within ``ff_tolerance``.
TOLERANCE_KEYS = ("a_cpu_busy_ns", "b_cpu_busy_ns")


def _hybrid_costs(costs: CostModel, n_conns: int, cross: bool) -> CostModel:
    """Capacity sized for the population on *both* machines, with the
    fidelity knobs for one leg: ``cross=False`` is the demote-at-wire
    engine (per-host fast-forward only), ``cross=True`` adds the rack
    coordinator."""
    return costs.replace(
        flow_fastpath=True,
        flow_fastpath_entries=max(costs.flow_fastpath_entries, 4 * n_conns),
        smartnic_sram_bytes=max(
            costs.smartnic_sram_bytes, 2 * n_conns * costs.conn_state_bytes),
        rx_ring_entries=2_048, tx_ring_entries=2_048,
        fast_forward=True, ff_tx=True, ff_cross_machine=cross,
    )


def _rack_testbed(n_conns: int, costs: CostModel,
                  n_cores: int = 4) -> TwoHostTestbed:
    """Two Norman hosts on one switch, ``n_conns`` A→B connections, and
    the switch taught where B lives (one B→A packet — the ARP-reply
    analogue; without it every A→B frame floods and no switch path is
    ever frozen). Identical in every leg, so it cancels in parity."""
    tb = TwoHostTestbed(NormanOS, NormanOS, costs=costs, n_cores=n_cores)
    app_cores = list(range(1, n_cores))
    a_procs = [tb.host_a.spawn(f"cli{c}", "bob", core_id=c)
               for c in app_cores]
    b_procs = [tb.host_b.spawn(f"srv{c}", "carol", core_id=c)
               for c in app_cores]
    a_eps = [
        tb.host_a.dataplane.open_endpoint(
            a_procs[i % len(a_procs)], PROTO_UDP, A_PORT_BASE + i)
        for i in range(n_conns)
    ]
    b_eps = [
        tb.host_b.dataplane.open_endpoint(
            b_procs[i % len(b_procs)], PROTO_UDP, B_PORT_BASE + i)
        for i in range(n_conns)
    ]
    tb.run_all()
    b_eps[0].send(64, (HOST_A_IP, A_PORT_BASE))
    tb.run_all()
    tb._e23_a_eps = a_eps  # type: ignore[attr-defined]
    tb._e23_b_eps = b_eps  # type: ignore[attr-defined]
    return tb


def _send_round(tb: TwoHostTestbed, a_eps, per_conn: int,
                subset=None) -> int:
    """Schedule ``per_conn`` spaced single-packet sends from every A
    endpoint (or a subset) toward its B counterpart. Returns the number
    scheduled."""
    idx = range(len(a_eps)) if subset is None else subset
    base = tb.sim.now + 1_000
    i = 0
    for _round in range(per_conn):
        for e in idx:
            tb.sim.at(base + i * SEND_GAP_NS, a_eps[e].send, PAYLOAD,
                      (HOST_B_IP, B_PORT_BASE + e))
            i += 1
    return i


def _drain_b(tb: TwoHostTestbed, b_eps, per_conn: int, subset=None) -> int:
    """Non-blocking drain of B's endpoints until dry (ring packets and
    fluid credit look identical to the application)."""
    idx = list(range(len(b_eps)) if subset is None else subset)
    consumed = [0]

    def _count(sig):
        if sig.ok:
            consumed[0] += len(sig.value)

    while True:
        before = consumed[0]
        for e in idx:
            b_eps[e].recv_burst(per_conn, blocking=False).add_callback(_count)
        tb.run_all()
        if consumed[0] == before:
            return consumed[0]


def _host_observables(host, prefix: str, busy0: int,
                      obs: Dict[str, object]) -> None:
    m = host.machine
    fp = m.fastpath
    tracer = m.tracer
    work = tracer.work_by_stage(include_wait=False) if tracer.enabled else {}
    closed = tracer.closed_contexts() if tracer.enabled else []
    obs[f"{prefix}_fp_hits"] = fp.hits if fp is not None else 0
    obs[f"{prefix}_fp_misses"] = fp.misses if fp is not None else 0
    obs[f"{prefix}_cpu_busy_ns"] = m.cpus.total_busy_ns() - busy0
    obs[f"work_{prefix}"] = work
    obs[f"conserved_{prefix}"] = all(
        c.span_sum() == c.latency_ns() for c in closed)
    if m.ff is not None:
        obs[f"ff_{prefix}"] = m.ff.stats()


def _observe(tb: TwoHostTestbed, delivered: int, busy0_a: int, busy0_b: int,
             wall_s: float) -> Dict[str, object]:
    a, b = tb.host_a, tb.host_b
    nic_a = a.dataplane.nic  # type: ignore[attr-defined]
    nic_b = b.dataplane.nic  # type: ignore[attr-defined]
    dma_a = a.machine.copies.layer(LAYER_DMA)
    dma_b = b.machine.copies.layer(LAYER_DMA_DIRECT)
    obs: Dict[str, object] = {
        "b_delivered": delivered,
        "a_tx_pkts": int(nic_a.metrics.counter("tx_pkts").value),
        "b_rx_pkts": int(nic_b.metrics.counter("rx_pkts").value),
        "a_mmio_writes": int(a.machine.dma.metrics.counter("mmio_writes").value),
        "a_dma_bytes": dma_a.bytes_copied,
        "a_dma_ops": dma_a.copies,
        "b_dma_bytes": dma_b.bytes_copied,
        "b_dma_ops": dma_b.copies,
        "a_qdisc_enqueued": int(nic_a.scheduler.metrics.counter("enqueued").value),
        "a_qdisc_emitted": int(nic_a.scheduler.metrics.counter("emitted").value),
        "switch_frames": int(tb.switch.metrics.counter("frames").value),
        "switch_flooded": int(tb.switch.metrics.counter("flooded").value),
        "uplink_sent": int(a.uplink.metrics.counter("sent").value),
        "uplink_bytes": int(a.uplink.metrics.meter("bytes").total_bytes),
        "downlink_sent": int(b.downlink.metrics.counter("sent").value),
        "downlink_bytes": int(b.downlink.metrics.meter("bytes").total_bytes),
        "wall_s": wall_s,
        "events": tb.sim.events_fired,
    }
    _host_observables(a, "a", busy0_a, obs)
    _host_observables(b, "b", busy0_b, obs)
    if tb.rack is not None:
        obs["rack"] = tb.rack.stats()
    return obs


def run_leg(n_conns: int, rounds: int, costs: CostModel,
            exact: bool = False) -> Dict[str, object]:
    """One parity leg: per round, a wave of spaced A→B sends, then B's
    application drains. Both legs share every capacity knob — only the
    fidelity switches differ, so any divergence is the engine's fault."""
    leg_costs = costs.replace(
        trace=True, flow_fastpath=True,
        flow_fastpath_entries=max(costs.flow_fastpath_entries, 4 * n_conns),
    )
    if not exact:
        # promote_after=2: the receiver promotes on its 3rd packet, the
        # sender's first gate attempt is vetoed (the receiver's promotion
        # races one wire latency behind), and the rebuilt streak binds the
        # flow end-to-end on send 5 — leaving most of the schedule fluid.
        leg_costs = leg_costs.replace(
            fast_forward=True, ff_tx=True, ff_cross_machine=True,
            ff_promote_after=2)
    tb = _rack_testbed(n_conns, leg_costs)
    a_eps = tb._e23_a_eps  # type: ignore[attr-defined]
    b_eps = tb._e23_b_eps  # type: ignore[attr-defined]
    busy0_a = tb.host_a.machine.cpus.total_busy_ns()
    busy0_b = tb.host_b.machine.cpus.total_busy_ns()
    delivered = 0
    t0 = time.perf_counter()
    for _round in range(rounds):
        _send_round(tb, a_eps, SENDS_PER_ROUND)
        tb.run_all()
        if tb.rack is not None:
            tb.rack.flush_all()
            tb.run_all()
        delivered += _drain_b(tb, b_eps, SENDS_PER_ROUND)
    wall = time.perf_counter() - t0
    return _observe(tb, delivered, busy0_a, busy0_b, wall)


def run_parity(
    n_conns: int = PARITY_CONNS,
    rounds: int = PARITY_ROUNDS,
    costs: CostModel = DEFAULT_COSTS,
) -> Dict[str, object]:
    """Leg (a): packet-exact vs end-to-end cross-machine fluid, same
    schedule."""
    exact = run_leg(n_conns, rounds, costs, exact=True)
    hybrid = run_leg(n_conns, rounds, costs)
    tol = costs.ff_tolerance
    rows: List[Row] = []
    ok = True
    for key in EXACT_KEYS + TOLERANCE_KEYS:
        e, h = float(exact[key]), float(hybrid[key])
        err = abs(h - e) / max(abs(e), 1e-9)
        this_ok = (h == e) if key in EXACT_KEYS else (err <= tol)
        ok = ok and this_ok
        rows.append({
            "observable": key, "exact": e, "hybrid": h,
            "rel_err": err, "ok": this_ok,
        })
    stage_rows: List[Row] = []
    for prefix in ("a", "b"):
        wk_e, wk_h = exact[f"work_{prefix}"], hybrid[f"work_{prefix}"]
        for stage in sorted(set(wk_e) | set(wk_h)):
            e, h = float(wk_e.get(stage, 0)), float(wk_h.get(stage, 0))
            err = abs(h - e) / max(abs(e), 1e-9)
            this_ok = err <= tol
            ok = ok and this_ok
            stage_rows.append({
                "observable": f"stage_{prefix}:{stage}", "exact": e,
                "hybrid": h, "rel_err": err, "ok": this_ok,
            })
    # Conservation is an exact-match observable *between legs*, not an
    # absolute: cross-host TX contexts get the far downlink's wire time
    # charged after close in exact mode (see module docstring), and the
    # fluid replay reproduces exactly that. The receive side must agree
    # too — on this workload B's contexts conserve in both legs except
    # for B's single switch-teach send, which breaks both equally.
    conserved_ok = (
        exact["conserved_a"] == hybrid["conserved_a"]
        and exact["conserved_b"] == hybrid["conserved_b"]
    )
    ok = ok and conserved_ok
    rack = hybrid.get("rack", {})
    bound_ok = rack.get("bindings", 0) >= n_conns
    ok = ok and bound_ok
    ff_a = hybrid.get("ff_a", {})
    ff_b = hybrid.get("ff_b", {})
    fluid = ff_a.get("fluid_packets", 0) + ff_b.get("fluid_packets", 0)
    total = int(hybrid["b_delivered"]) * 2  # each packet has a TX and RX leg
    return {
        "rows": rows,
        "stage_rows": stage_rows,
        "exact": exact,
        "hybrid": hybrid,
        "ok": bool(ok),
        "tolerance": tol,
        "conserved_ok": bool(conserved_ok),
        "bound_ok": bool(bound_ok),
        "fluid_fraction": fluid / max(total, 1),
        "rack": rack,
    }


def _warm_to_binding(tb: TwoHostTestbed, a_eps, warmup_rounds: int) -> None:
    """Exact rounds until every flow is bound end-to-end: the receiver
    promotes on its first cached hit, then the sender's gated TX promotion
    lands one round later."""
    for _ in range(warmup_rounds):
        _send_round(tb, a_eps, 1)
        tb.run_all()


def run_crossover(
    n_conns: int = CROSS_CONNS,
    bulk: int = CROSS_BULK,
    rounds: int = CROSS_ROUNDS,
    probe_conns: int = PROBE_CONNS,
    costs: CostModel = DEFAULT_COSTS,
) -> Row:
    """Leg (b): end-to-end fluid at full scale vs the demote-at-wire
    engine probed at the same scale; speedup is the cross-host
    packets-per-wall-second ratio."""
    # Hybrid leg: warm to binding, then absorb + flush through the switch.
    hy = _hybrid_costs(costs, n_conns, cross=True).replace(ff_promote_after=1)
    # Receiver promotes after miss + streak; the gated TX side needs one
    # more round to see a promoted receiver.
    warmup = 3 + hy.ff_promote_after
    tb = _rack_testbed(n_conns, hy)
    a_eps = tb._e23_a_eps  # type: ignore[attr-defined]
    a_ff = tb.host_a.machine.ff
    assert a_ff is not None and tb.rack is not None
    t0 = time.perf_counter()
    _warm_to_binding(tb, a_eps, warmup)
    bound = tb.rack.bound
    flows = [
        FiveTuple(PROTO_UDP, HOST_A_IP, A_PORT_BASE + i,
                  HOST_B_IP, B_PORT_BASE + i)
        for i in range(n_conns)
    ]
    absorbed = 0
    for _round in range(rounds):
        for flow in flows:
            if a_ff.absorb(flow, bulk):
                absorbed += bulk
        tb.rack.flush_all()
        tb.run_all()
    hybrid_wall = time.perf_counter() - t0
    hybrid_pkts = warmup * n_conns + absorbed
    hybrid_events = tb.sim.events_fired

    # Baseline: the demote-at-wire engine (per-host fast-forward, no rack)
    # at the same scale and capacity, probed on a sample — every A→B send
    # runs the full TX chain, both links, and the switch packet-exact;
    # only B's RX side absorbs.
    base_costs = _hybrid_costs(costs, n_conns, cross=False).replace(
        ff_promote_after=1)
    ex = _rack_testbed(n_conns, base_costs)
    ex_a_eps = ex._e23_a_eps  # type: ignore[attr-defined]
    ex_b_eps = ex._e23_b_eps  # type: ignore[attr-defined]
    subset = range(0, min(probe_conns, n_conns))
    t0 = time.perf_counter()
    probe_pkts = 0
    for _round in range(PROBE_ROUNDS):
        probe_pkts += _send_round(ex, ex_a_eps, SENDS_PER_ROUND,
                                  subset=subset)
        ex.run_all()
        _drain_b(ex, ex_b_eps, SENDS_PER_ROUND, subset=subset)
    exact_wall = time.perf_counter() - t0

    exact_rate = probe_pkts / max(exact_wall, 1e-9)
    hybrid_rate = hybrid_pkts / max(hybrid_wall, 1e-9)
    return {
        "connections": n_conns,
        "bound": bound,
        "fluid_packets": a_ff.fluid_packets,
        "hybrid_pkts": hybrid_pkts,
        "hybrid_wall_s": hybrid_wall,
        "hybrid_events": hybrid_events,
        "wire_probe_pkts": probe_pkts,
        "wire_probe_wall_s": exact_wall,
        "wire_ns_per_pkt": 1e9 / max(exact_rate, 1e-9),
        "hybrid_ns_per_pkt": 1e9 / max(hybrid_rate, 1e-9),
        "speedup": hybrid_rate / max(exact_rate, 1e-9),
    }


def headline(parity: Dict[str, object], speedup: Optional[Row]) -> dict:
    h = {
        "parity_ok": parity["ok"],
        "tolerance": parity["tolerance"],
        "fluid_fraction": parity["fluid_fraction"],
        "bound_ok": parity["bound_ok"],
        "max_rel_err": max(
            float(r["rel_err"]) for r in parity["rows"] + parity["stage_rows"]
        ),
    }
    if speedup is not None:
        h["connections"] = speedup["connections"]
        h["bound"] = speedup["bound"]
        h["speedup"] = speedup["speedup"]
    return h


def main() -> str:
    parity = run_parity()
    speedup = run_crossover()
    h = headline(parity, speedup)
    return "\n".join([
        "rack parity (packet-exact vs end-to-end fluid, A -> switch -> B)",
        fmt_table(parity["rows"] + parity["stage_rows"],
                  columns=PARITY_COLUMNS),
        "",
        "rack crossover (end-to-end fluid vs demote-at-wire engine)",
        fmt_table([speedup]),
        "",
        f"headline: cross-machine fluid epochs are invisible in the counted "
        f"observables (max relative error {h['max_rel_err']:.4%} against a "
        f"{h['tolerance']:.0%} tolerance, {h['fluid_fraction']:.0%} of "
        f"packet-legs fluid) and {h['speedup']:.1f}x faster than "
        f"demote-at-wire at {h['connections']:,} cross-host connections "
        f"({h['bound']:,} bound end-to-end)",
    ])


if __name__ == "__main__":
    print(main())
