"""Grep-lint: no core-time charge may bypass the tracing spine.

Every ``Core.execute(...)`` call site in ``src/repro`` (outside
``repro/trace`` itself) must attribute its nanoseconds — by charging spans
(``charge(`` / ``fill_gap(``), recording loose work (``loose(``), passing a
context into the core (``ctx=``), delegating to an attributed helper
(``_payload(``), or carrying an explicit ``# trace:`` marker pointing at
where the attribution happens. A new charging site added without any of
these fails this test, keeping the "no lost nanoseconds" invariant
enforceable by inspection.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

# A core-occupying execute: the receiver is a CPU core (``core``,
# ``_core``/``_score``, or an index into the cpus array). Overlay/FPGA
# program ``.execute(pkt, now)`` calls are a different API and don't
# charge core time.
CORE_EXECUTE = re.compile(r"(?:core|_score|cpus\[[^\]]+\])\.execute\(")

ATTRIBUTION = re.compile(
    r"charge\(|loose\(|fill_gap\(|ctx=|_payload\(|#\s*trace:"
)

# Lines of context searched around each call site: attribution usually
# precedes the execute (cost assembly), but multi-line calls put the
# ``loose(...)`` inside the argument list just after it.
BEFORE, AFTER = 20, 5

# repro/trace is the spine itself; host/cpu.py is Core.execute's own
# definition (plus its docstring example).
EXCLUDED = {"trace", "host/cpu.py"}


def _excluded(rel: str) -> bool:
    return rel.startswith("trace/") or rel in EXCLUDED


def _charge_sites():
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if _excluded(rel):
            continue
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            if CORE_EXECUTE.search(line):
                window = "\n".join(
                    lines[max(0, i - BEFORE): i + 1 + AFTER]
                )
                yield rel, i + 1, line.strip(), window


def test_scan_finds_the_known_charging_sites():
    """The receiver pattern must actually match the codebase — if every
    dataplane renamed its core handles the lint would silently pass."""
    sites = list(_charge_sites())
    assert len(sites) >= 15, [f"{r}:{n}" for r, n, _l, _w in sites]
    files = {r for r, _n, _l, _w in sites}
    for expected in ("kernel/netstack.py", "kernel/syscall.py",
                     "dataplanes/sidecar.py", "dataplanes/bypass.py",
                     "dataplanes/hypervisor.py", "core/library.py",
                     "apps/workers.py"):
        assert expected in files, expected


def test_every_core_charge_is_stage_attributed():
    naked = [
        f"{rel}:{lineno}: {line}"
        for rel, lineno, line, window in _charge_sites()
        if not ATTRIBUTION.search(window)
    ]
    assert not naked, (
        "core-time charges with no stage attribution (add charge()/loose()/"
        "ctx=, or a '# trace:' marker naming where the span is charged):\n"
        + "\n".join(naked)
    )
