"""Fast smoke tests over every experiment harness (reduced parameters).

The full-size runs live in benchmarks/; these keep the harness code under
unit-test coverage and pin the qualitative shape at small scale.
"""

import pytest

from repro.experiments.common import fmt_table, run_bulk_tx
from repro.experiments.e1_dataplane_overhead import run_e1
from repro.experiments.e2_interposition_placement import run_e2
from repro.experiments.e4_debugging import run_e4
from repro.experiments.e6_blocking_io import run_e6
from repro.experiments.e8_connection_scaling import run_point
from repro.experiments.e10_reconfiguration import (
    churn_rows,
    measure_kopi_config_update,
)
from repro.experiments.f1_architecture import run_f1


class TestCommon:
    def test_fmt_table_renders(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = fmt_table(rows)
        assert "a" in text and "10" in text and "0.125" in text
        assert fmt_table([]) == "(no rows)"

    def test_fmt_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        assert "b" not in fmt_table(rows, columns=["a"])

    def test_run_bulk_tx_returns_complete_row(self):
        from repro.core import NormanOS

        row = run_bulk_tx(NormanOS, payload_len=500, count=20)
        assert row["delivered"] == 20
        assert row["goodput_gbps"] > 0
        assert row["app_cpu_ns_per_pkt"] > 0


class TestE1Smoke:
    def test_kernel_slower_than_kopi(self):
        rows = run_e1(count=30, payloads=(1_458,))
        by_plane = {r["plane"]: r for r in rows}
        assert (by_plane["kernel"]["app_cpu_ns_per_pkt"]
                > 3 * by_plane["kopi"]["app_cpu_ns_per_pkt"])
        assert by_plane["kopi"]["goodput_gbps"] > by_plane["kernel"]["goodput_gbps"]


class TestE2Smoke:
    def test_movement_taxonomy(self):
        rows = run_e2(count=30)
        by_plane = {r["plane"]: r for r in rows}
        assert by_plane["kernel"]["syscalls_per_pkt"] >= 1
        assert by_plane["sidecar"]["coh_lines_per_pkt"] > 0
        assert by_plane["kopi"]["syscalls_per_pkt"] == 0


class TestE4Smoke:
    def test_kopi_constant_actions(self):
        rows = run_e4(n_apps_sweep=(4, 8), seed=2)
        kopi = [r for r in rows if r["plane"] == "kopi"]
        assert all(r["operator_actions"] == 1 for r in kopi)
        bypass = [r["operator_actions"] for r in rows if r["plane"] == "bypass"]
        assert max(bypass) > 1


class TestE6Smoke:
    def test_polling_vs_blocking(self):
        rows = run_e6(gaps_ns=(500_000,), n_messages=8)
        by_mode = {(r["plane"], r["mode"]): r for r in rows}
        assert by_mode[("bypass", "poll (forced)")]["core_util_pct"] > 90
        assert by_mode[("kopi", "block")]["core_util_pct"] < 10


class TestE8Smoke:
    def test_small_point_runs_and_fits(self):
        row = run_point(64, packets_total=1_024)
        assert row["line_rate_pct"] == pytest.approx(100.0)
        assert row["llc_miss_rate"] == 0.0

    def test_oversized_point_degrades(self):
        fit = run_point(512, packets_total=4_096)
        over = run_point(2_048, packets_total=4_096)
        assert over["llc_miss_rate"] > fit["llc_miss_rate"]
        assert over["goodput_gbps"] < fit["goodput_gbps"]

    def test_shared_rings_do_not_degrade(self):
        over = run_point(2_048, packets_total=4_096, shared_rings=True)
        assert over["line_rate_pct"] > 99

    def test_analytic_mode_runs(self):
        row = run_point(256, packets_total=1_024, structural=False)
        assert row["llc_miss_rate"] == -1.0  # no structural cache
        assert row["goodput_gbps"] > 0


class TestE10Smoke:
    def test_config_update_is_microseconds(self):
        from repro import units

        latency = measure_kopi_config_update()
        assert 0 < latency < units.MS

    def test_churn_shape(self):
        rows = churn_rows()
        assert sum(r["unsupported"] for r in rows) > 0
        kernel = next(r for r in rows if "kernel" in r["target"])
        assert kernel["unsupported"] == 0


class TestF1Smoke:
    def test_all_arrows_verified(self):
        rows = run_f1()
        assert len(rows) == 7
        assert all(r["verified"] for r in rows)
