"""Run every experiment and print one combined report.

Usage::

    python -m repro.experiments.report            # full (couple of minutes)
    python -m repro.experiments.report --quick    # reduced parameters

The output sections mirror EXPERIMENTS.md; this is the command that
regenerates the "measured" numbers recorded there.
"""

from __future__ import annotations

import sys

from . import e1_dataplane_overhead as e1
from . import e2_interposition_placement as e2
from . import e3_capability_matrix as e3
from . import e4_debugging as e4
from . import e5_port_partitioning as e5
from . import e6_blocking_io as e6
from . import e7_qos_shaping as e7
from . import e8_connection_scaling as e8
from . import e9_resource_exhaustion as e9
from . import e10_reconfiguration as e10
from . import e11_shared_rings as e11
from . import e12_batching as e12
from . import e13_zero_copy as e13
from . import e14_policy_churn as e14
from . import e15_flow_fastpath as e15
from . import e16_latency_anatomy as e16
from . import e17_multi_tenant as e17
from . import e18_cluster as e18
from . import e21_fidelity_crossover as e21
from . import e22_group_fastforward as e22
from . import e23_rack_fastforward as e23
from . import f1_architecture as f1
from . import s1_tail_latency as s1
from .common import fmt_table

SECTIONS = (
    ("E1 — dataplane overhead (§1)", e1.main),
    ("E2 — interposition placement (§1)", e2.main),
    ("E3 — capability matrix (§2)", e3.main),
    ("E4 — debugging the ARP flood (§2)", e4.main),
    ("E5 — partitioning ports (§2)", e5.main),
    ("E6 — blocking vs polling I/O (§2/§4.3)", e6.main),
    ("E7 — QoS on the port-hopping game (§2)", e7.main),
    ("E8 — connection scaling / DDIO cliff (§5)", e8.main),
    ("E9 — NIC resource exhaustion (§5)", e9.main),
    ("E10 — programmability & reconfiguration (§3/§4.4)", e10.main),
    ("E11 — shared-rings ablation (§5)", e11.main),
    ("E12 — batching: what amortizes and what cannot", e12.main),
    ("E13 — zero-copy: where elision pays and where it cannot", e13.main),
    ("E14 — policy churn: atomic commits and the stale window", e14.main),
    ("E15 — flow fast path: megaflow-style verdict cache", e15.main),
    ("E16 — latency anatomy: attributed stage decomposition", e16.main),
    ("E17 — multi-tenant isolation: hog vs victims, per-tenant scheduler", e17.main),
    ("E18 — cluster scale-out: in-switch L4 balancer + live flow migration", e18.main),
    ("E21 — fidelity crossover: hybrid fast-forward vs packet-exact", e21.main),
    ("E22 — group fast-forward: one epoch for many flows, TX absorbed", e22.main),
    ("E23 — rack fast-forward: end-to-end fluid epochs across the switch", e23.main),
    ("F1 — Figure 1 architecture arrows", f1.main),
    ("S1 — supplementary: RPC tail latency", s1.main),
)


def quick_report() -> str:
    """Reduced-parameter pass: every harness, small workloads."""
    parts = []
    parts.append("E1 (reduced)")
    parts.append(fmt_table(e1.run_e1(count=60, payloads=(1_458,))))
    parts.append("E2 (reduced)")
    parts.append(fmt_table(e2.run_e2(count=60)))
    parts.append("E8 (reduced)")
    parts.append(fmt_table(
        [e8.run_point(n, packets_total=2_048) for n in (512, 1_024, 2_048)]
    ))
    parts.append("F1")
    parts.append(fmt_table(f1.run_f1()))
    return "\n\n".join(parts)


def full_report() -> str:
    parts = []
    for title, main_fn in SECTIONS:
        parts.append("=" * 72)
        parts.append(title)
        parts.append("=" * 72)
        parts.append(main_fn())
    return "\n".join(parts)


def main(argv: "list[str]") -> str:
    if "--quick" in argv:
        return quick_report()
    return full_report()


if __name__ == "__main__":
    print(main(sys.argv[1:]))
