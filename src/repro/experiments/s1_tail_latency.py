"""S1 (supplementary) — RPC tail latency across dataplanes.

Not a numbered claim in the paper, but the motivation of its §1: kernel
bypass exists because "network throughput and latency dictate the
performance of many applications". Closed-loop RPC against an echoing peer
measures the round trip each architecture imposes; the interesting
comparison is KOPI vs bypass (interposition should cost nanoseconds, not
microseconds) and kernel vs everyone (two syscalls + copies per RPC).
"""

from __future__ import annotations

from typing import List

from .. import units
from ..dataplanes import Testbed
from ..apps import RpcClient
from .common import Row, fmt_table, planes_under_test

DEFAULT_COUNT = 150
REQUEST_LEN = 128


def run_s1(count: int = DEFAULT_COUNT) -> List[Row]:
    """One row per (plane, wait-mode). Polling isolates the dataplane's
    wire-to-wire latency; blocking adds the (optional) wake-up cost."""
    configs = [(cls, False) for cls in planes_under_test()]
    from ..core import NormanOS

    configs.append((NormanOS, True))  # kopi, polling
    rows: List[Row] = []
    for plane_cls, polling in configs:
        if polling is False and not plane_cls.supports_blocking_io:
            polling = True  # bypass/hypervisor can only poll
        tb = Testbed(plane_cls)
        tb.peer.enable_echo(lambda pkt: pkt.payload_len)
        rpc = RpcClient(tb, comm="rpc", user="bob", core_id=1,
                        request_len=REQUEST_LEN, count=count,
                        polling=polling).start()
        tb.run_all()
        rtt = rpc.rtt
        rows.append({
            "plane": plane_cls.name,
            "wait": "poll" if polling else "block",
            "completed": rpc.completed,
            "rtt_us_p50": rtt.p50 / units.US,
            "rtt_us_p99": rtt.p99 / units.US,
            "rtt_us_max": rtt.maximum / units.US,
        })
    return rows


def headline(rows: List[Row]) -> dict:
    by_key = {(r["plane"], r["wait"]): r for r in rows}
    return {
        "kernel_vs_kopi_poll_p99": (
            by_key[("kernel", "block")]["rtt_us_p99"]
            / by_key[("kopi", "poll")]["rtt_us_p99"]
        ),
        "kopi_poll_vs_bypass_p99": (
            by_key[("kopi", "poll")]["rtt_us_p99"]
            / by_key[("bypass", "poll")]["rtt_us_p99"]
        ),
        "kopi_blocking_premium_us": (
            by_key[("kopi", "block")]["rtt_us_p99"]
            - by_key[("kopi", "poll")]["rtt_us_p99"]
        ),
    }


def main() -> str:
    rows = run_s1()
    h = headline(rows)
    return "\n".join([
        fmt_table(rows),
        "",
        f"headline: kernel p99 RTT is {h['kernel_vs_kopi_poll_p99']:.1f}x KOPI's "
        f"(polling); KOPI polls within {100 * (h['kopi_poll_vs_bypass_p99'] - 1):.0f}% "
        f"of bypass; choosing to block costs +{h['kopi_blocking_premium_us']:.1f} us",
    ])


if __name__ == "__main__":
    print(main())
