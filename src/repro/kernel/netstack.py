"""The classic in-kernel network stack — the baseline dataplane.

Every packet crosses the user/kernel boundary (syscall + copy: the "virtual
data movement" of §1), runs protocol processing, netfilter, and the egress
qdisc in software on the application's core. In exchange the kernel gets
what §2 wants: owner attribution on every packet, a global ARP view, tap
points for tcpdump, and the ability to block/wake readers.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..config import CostModel
from ..errors import ConnectionRefused, KernelError, WouldBlock
from ..net.addresses import IPv4Address, MacAddress
from ..net.headers import PROTO_TCP, PROTO_UDP
from ..net.packet import Packet, make_tcp, make_udp
from ..sim import MetricSet, Signal, Simulator
from ..trace import (
    STAGE_FASTPATH,
    STAGE_NETFILTER,
    STAGE_PROTO,
    STAGE_QDISC,
    STAGE_SCHED_WAKE,
    STAGE_SYSCALL,
    charge,
)
from .netfilter import CHAIN_INPUT, CHAIN_OUTPUT, DROP, RuleTable
from .process import Process, owner_info
from .qdisc import DEFAULT_CLASS, PfifoQdisc
from .qdisc_runner import PacedQdiscRunner
from .scheduler import KernelScheduler
from .sockets import KernelSocket, SocketTable
from .syscall import SyscallLayer

TapFn = Callable[[Packet], None]
ClassifyFn = Callable[[Packet, Optional[int]], str]


def _default_classify(_pkt: Packet, _pid: Optional[int]) -> str:
    return DEFAULT_CLASS


class KernelNetStack:
    """Software TX/RX paths over the kernel substrate."""

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel,
        cpus,
        scheduler: KernelScheduler,
        syscalls: SyscallLayer,
        sockets: SocketTable,
        filters: RuleTable,
        host_ip: IPv4Address,
        host_mac: MacAddress,
        tx_rate_bps: int,
        nic_send: Callable[[Packet], None],
        mac_for: Callable[[IPv4Address], MacAddress],
        fastpath=None,
        tracer=None,
        tenants=None,
    ):
        self.sim = sim
        self.costs = costs
        # Optional FlowFastPath (None unless CostModel.flow_fastpath): a hit
        # replaces the per-rule netfilter walk with one flowtable lookup.
        self.fastpath = fastpath
        # Tracing spine (repro.trace); disabled tracers never open contexts.
        self.tracer = tracer
        # Optional TenantRegistry: the kernel's syscall/socket paths resolve
        # the calling process to its tenant and stamp/count per tenant.
        # None (or a disabled registry) keeps the seed path untouched.
        self.tenants = tenants if (tenants is not None
                                   and tenants.enabled) else None
        self.cpus = cpus
        self.scheduler = scheduler
        self.syscalls = syscalls
        self.sockets = sockets
        self.filters = filters
        self.host_ip = host_ip
        self.host_mac = host_mac
        #: Virtual IPs this host answers for (DSR-style cluster service
        #: addresses). Demux is by (proto, dport) and is unaffected; the set
        #: exists so introspection tools and experiments can ask which hosts
        #: serve a VIP — the kernel keeps its global view even when the
        #: steering decision lives in the switch.
        self.vips: "set[IPv4Address]" = set()
        self.mac_for = mac_for
        self.metrics = MetricSet("netstack")
        self.egress = PacedQdiscRunner(
            sim, PfifoQdisc(), tx_rate_bps, nic_send, name="kernel_egress"
        )
        self.classify: ClassifyFn = _default_classify
        self._taps: List[TapFn] = []
        self.tap_point = None  # Optional[InterpositionPoint], set at registration
        self._rx_waiters: "dict[int, tuple[Process, Signal]]" = {}

    # --- taps (tcpdump attachment point) ------------------------------------

    def add_tap(self, tap: TapFn) -> Callable[[], None]:
        """Attach a packet tap (both directions); returns a detach callable.
        Attaching/detaching a tap is a capture-policy commit."""
        self._taps.append(tap)
        if self.tap_point is not None:
            self.tap_point.record_update()

        def _detach() -> None:
            self._taps.remove(tap)
            if self.tap_point is not None:
                self.tap_point.record_update()

        return _detach

    def _run_taps(self, pkt: Packet) -> None:
        if not self._taps:
            return
        for tap in self._taps:
            tap(pkt)
        if self.tap_point is not None:
            self.tap_point.record_eval(hit=True)

    # --- payload movement (copy or zero-copy) --------------------------------

    def _tx_payload(self, proc: Process, sock: KernelSocket, payload_len: int,
                    ctx=None) -> int:
        """Charge moving TX payload across the boundary; track per-socket
        copied vs elided bytes (`ss`-style observability for E13)."""
        cost = self.syscalls.tx_payload_cost(proc, payload_len, ctx=ctx)
        if self.costs.tx_zerocopy:
            sock.tx_elided_bytes += payload_len
        else:
            sock.tx_copied_bytes += payload_len
        return cost

    def _rx_payload(self, proc: Process, sock: KernelSocket, payload_len: int,
                    ctx=None) -> int:
        """RX counterpart of :meth:`_tx_payload`."""
        cost = self.syscalls.rx_payload_cost(proc, payload_len, ctx=ctx)
        if self.costs.rx_zerocopy:
            sock.rx_elided_bytes += payload_len
        else:
            sock.rx_copied_bytes += payload_len
        return cost

    def _tenant_stamp(self, pkt: Packet, proc: Optional[Process]) -> None:
        """Resolve the calling process to its tenant, stamp the packet, and
        move that tenant's direction counter (lazy: counters exist only for
        tenants that actually touched the stack)."""
        if self.tenants is None or proc is None:
            return
        tenant = self.tenants.resolve(proc)
        pkt.meta.tenant_tid = tenant.tid
        prefix = f"tenant.{tenant.tid}"
        self.metrics.counter(f"{prefix}.pkts").inc()
        self.metrics.counter(f"{prefix}.bytes").inc(pkt.wire_len)

    def _loose(self, stage: str, ns: int, label: str = "") -> int:
        """Loose (message-level) attribution for work with no packet context."""
        if self.tracer is not None:
            self.tracer.loose(stage, ns, label=label)
        return ns

    # --- flow fast path (megaflow-style verdict cache) ------------------------

    def _tx_filter(self, pkt: Packet, proc: Process, owner):
        """OUTPUT-chain stage: a flow-cache hit returns the cached verdict
        at flowtable cost; otherwise the full per-rule walk runs. Returns
        (verdict, modeled filter ns, cache entry or None)."""
        fp = self.fastpath
        if fp is not None:
            ft = pkt.five_tuple
            if ft is not None:
                entry = fp.lookup(CHAIN_OUTPUT, ft, proc.pid)
                if entry is not None:
                    return entry.verdict, fp.hit_ns, entry
        verdict, examined = self.filters.evaluate(CHAIN_OUTPUT, pkt, owner)
        return verdict, examined * self.costs.netfilter_rule_ns, None

    def _tx_class(self, pkt: Packet, proc: Process, verdict: str, fp_entry) -> str:
        """Qdisc classification, served from the cache on a hit; a miss
        classifies and installs the composed (verdict, class) entry."""
        if fp_entry is not None and fp_entry.qdisc_class is not None:
            return fp_entry.qdisc_class
        cls = self.classify(pkt, proc.pid)
        self._tx_install(pkt, proc, verdict, cls, fp_entry)
        return cls

    def _tx_install(self, pkt: Packet, proc: Process, verdict: str, cls, fp_entry) -> None:
        fp = self.fastpath
        if fp is None or fp_entry is not None:
            return
        ft = pkt.five_tuple
        if ft is not None:
            fp.install(
                CHAIN_OUTPUT, ft, proc.pid,
                verdict=verdict, qdisc_class=cls, points=("netfilter",),
            )

    # --- TX -------------------------------------------------------------------

    def sendto(
        self,
        proc: Process,
        sock: KernelSocket,
        dst_ip: IPv4Address,
        dport: int,
        payload_len: int,
    ) -> Signal:
        """Send one message. The returned signal fires when the syscall
        returns (packet handed to the egress qdisc or dropped by policy);
        its value is True if the packet was admitted."""
        pkt = self._build(sock, dst_ip, dport, payload_len)
        owner = owner_info(proc)
        pkt.meta.owner_pid, pkt.meta.owner_uid, pkt.meta.owner_comm = owner
        pkt.meta.created_ns = self.sim.now
        self._tenant_stamp(pkt, proc)
        ctx = self.tracer.begin(pkt) if self.tracer is not None else None

        verdict, filter_ns, fp_entry = self._tx_filter(pkt, proc, owner)
        work = (
            self._tx_payload(proc, sock, payload_len, ctx=ctx)
            + charge(STAGE_PROTO, self.costs.kernel_tx_pkt_ns, ctx, label="tx_proto")
            + charge(STAGE_FASTPATH if fp_entry is not None else STAGE_NETFILTER,
                     filter_ns, ctx, label="output_chain")
            + charge(STAGE_QDISC, self.costs.qdisc_enqueue_ns, ctx, label="enqueue")
        )
        result = Signal("sendto")
        syscall_done = self.syscalls.invoke(proc, "sendto", work, ctx=ctx)

        def _after_syscall(_sig: Signal) -> None:
            self._run_taps(pkt)
            if verdict == DROP:
                self._tx_install(pkt, proc, verdict, None, fp_entry)
                self.metrics.counter("tx_filtered").inc()
                if ctx is not None:
                    ctx.close(self.sim.now)  # dropped: life ends at the filter
                result.succeed(False)
                return
            cls = self._tx_class(pkt, proc, verdict, fp_entry)
            admitted = self.egress.submit(pkt, cls)
            if admitted:
                sock.tx_bytes += payload_len
                self.metrics.counter("tx_pkts").inc()
            else:
                self.metrics.counter("tx_qdisc_drops").inc()
                if ctx is not None:
                    ctx.close(self.sim.now)  # tail-dropped at the qdisc
            result.succeed(admitted)

        syscall_done.add_callback(_after_syscall)
        return result

    def sendmmsg(
        self,
        proc: Process,
        sock: KernelSocket,
        dst_ip: IPv4Address,
        dport: int,
        payload_lens: Sequence[int],
    ) -> Signal:
        """Batched send — the ``sendmmsg(2)`` model: ONE user->kernel
        crossing for the whole burst, per-message protocol work unchanged.

        The returned signal fires when the batched syscall returns; its
        value is the number of messages admitted to the egress qdisc. A
        burst of one is cost- and event-identical to :meth:`sendto`.
        """
        n = len(payload_lens)
        if n == 0:
            result = Signal("sendmmsg")
            self.sim.after(0, result.succeed, 0)
            return result
        owner = owner_info(proc)
        work = 0
        lead_ctx = None  # burst-shared costs land on the first packet's trace
        staged: "list[tuple[Packet, str, object]]" = []
        for payload_len in payload_lens:
            pkt = self._build(sock, dst_ip, dport, payload_len)
            pkt.meta.owner_pid, pkt.meta.owner_uid, pkt.meta.owner_comm = owner
            pkt.meta.created_ns = self.sim.now
            self._tenant_stamp(pkt, proc)
            ctx = self.tracer.begin(pkt) if self.tracer is not None else None
            if lead_ctx is None:
                lead_ctx = ctx
            verdict, filter_ns, fp_entry = self._tx_filter(pkt, proc, owner)
            work += (
                self._tx_payload(proc, sock, payload_len, ctx=ctx)
                + charge(STAGE_PROTO, self.costs.kernel_tx_pkt_ns, ctx,
                         label="tx_proto")
                + charge(STAGE_FASTPATH if fp_entry is not None else STAGE_NETFILTER,
                         filter_ns, ctx, label="output_chain")
                + charge(STAGE_QDISC, self.costs.qdisc_enqueue_ns, ctx,
                         label="enqueue")
            )
            staged.append((pkt, verdict, fp_entry))
        # The crossing itself amortizes; invoke() charges syscall_ns, so only
        # the batched dispatch surplus is added to the in-kernel work.
        work += charge(STAGE_SYSCALL,
                       self.costs.syscall_burst_ns(n) - self.costs.syscall_ns,
                       lead_ctx, label="batch_surplus")
        result = Signal("sendmmsg")
        if n > 1:
            self.syscalls.record_batched(n)
        syscall_done = self.syscalls.invoke(
            proc, "sendto" if n == 1 else "sendmmsg", work, ctx=lead_ctx
        )

        def _after_syscall(_sig: Signal) -> None:
            admitted_count = 0
            for pkt, verdict, fp_entry in staged:
                self._run_taps(pkt)
                if pkt.meta.trace is not None:
                    # Absorb the wall time the core spent on the rest of the
                    # burst (zero at n=1, where a packet's own spans cover
                    # the whole syscall window).
                    pkt.meta.trace.fill_gap(STAGE_SCHED_WAKE, self.sim.now,
                                            label="batch_wait")
                if verdict == DROP:
                    self._tx_install(pkt, proc, verdict, None, fp_entry)
                    self.metrics.counter("tx_filtered").inc()
                    if pkt.meta.trace is not None:
                        pkt.meta.trace.close(self.sim.now)
                    continue
                cls = self._tx_class(pkt, proc, verdict, fp_entry)
                admitted = self.egress.submit(pkt, cls)
                if admitted:
                    sock.tx_bytes += pkt.payload_len
                    self.metrics.counter("tx_pkts").inc()
                    admitted_count += 1
                else:
                    self.metrics.counter("tx_qdisc_drops").inc()
                    if pkt.meta.trace is not None:
                        pkt.meta.trace.close(self.sim.now)
            result.succeed(admitted_count)

        syscall_done.add_callback(_after_syscall)
        return result

    def _build(
        self, sock: KernelSocket, dst_ip: IPv4Address, dport: int, payload_len: int
    ) -> Packet:
        dst_mac = self.mac_for(dst_ip)
        if sock.proto == PROTO_UDP:
            return make_udp(
                self.host_mac, dst_mac, self.host_ip, dst_ip, sock.port, dport, payload_len
            )
        if sock.proto == PROTO_TCP:
            return make_tcp(
                self.host_mac, dst_mac, self.host_ip, dst_ip, sock.port, dport, payload_len
            )
        raise KernelError(f"unsupported protocol: {sock.proto}")

    # --- RX -------------------------------------------------------------------

    def recv(self, proc: Process, sock: KernelSocket, blocking: bool = True) -> Signal:
        """Receive one message: (payload_len, src_ip, sport).

        Blocks (yielding the core) when the queue is empty and ``blocking``;
        otherwise fails with :class:`WouldBlock`.
        """
        result = Signal("recv")
        if sock.rx_queue:
            msg = sock.rx_queue.popleft()
            work = self._rx_payload(proc, sock, msg[0])
            done = self.syscalls.invoke(proc, "recvfrom", work)
            done.add_callback(lambda _s: result.succeed(msg))
            return result
        if not blocking:
            self.metrics.counter("rx_wouldblock").inc()
            self.sim.after(0, result.fail, WouldBlock(f"no data on port {sock.port}"))
            return result
        if sock.port in self._rx_waiters:
            raise KernelError(f"port {sock.port} already has a blocked reader")
        woken = self.scheduler.block(proc, reason=f"recv:{sock.port}")
        self._rx_waiters[sock.port] = (proc, woken)

        def _after_wake(sig: Signal) -> None:
            msg = sig.value
            work = self._rx_payload(proc, sock, msg[0])
            self.cpus[proc.core_id].execute(work, "rx_copy").add_callback(
                lambda _s: result.succeed(msg)
            )

        woken.add_callback(_after_wake)
        return result

    def recvmmsg(
        self, proc: Process, sock: KernelSocket, max_msgs: int, blocking: bool = True
    ) -> Signal:
        """Batched receive — the ``recvmmsg(2)`` model: drain up to
        ``max_msgs`` queued messages under one crossing (or, when blocking
        on an empty queue, wake once and drain whatever the burst brought,
        like ``MSG_WAITFORONE``). The value is the list of messages; a
        burst of one is cost- and event-identical to :meth:`recv`.
        """
        result = Signal("recvmmsg")
        if sock.rx_queue:
            msgs = [sock.rx_queue.popleft() for _ in range(min(max_msgs, len(sock.rx_queue)))]
            n = len(msgs)
            work = sum(self._rx_payload(proc, sock, m[0]) for m in msgs)
            work += self._loose(
                STAGE_SYSCALL,
                self.costs.syscall_burst_ns(n) - self.costs.syscall_ns,
                label="batch_surplus",
            )
            if n > 1:
                self.syscalls.record_batched(n)
            done = self.syscalls.invoke(proc, "recvfrom" if n == 1 else "recvmmsg", work)
            done.add_callback(lambda _s: result.succeed(msgs))
            return result
        if not blocking:
            self.metrics.counter("rx_wouldblock").inc()
            self.sim.after(0, result.fail, WouldBlock(f"no data on port {sock.port}"))
            return result
        if sock.port in self._rx_waiters:
            raise KernelError(f"port {sock.port} already has a blocked reader")
        woken = self.scheduler.block(proc, reason=f"recv:{sock.port}")
        self._rx_waiters[sock.port] = (proc, woken)

        def _after_wake(sig: Signal) -> None:
            msgs = [sig.value]
            while sock.rx_queue and len(msgs) < max_msgs:
                msgs.append(sock.rx_queue.popleft())
            work = sum(self._rx_payload(proc, sock, m[0]) for m in msgs)
            if len(msgs) > 1:
                work += self._loose(
                    STAGE_SYSCALL,
                    self.costs.syscall_burst_ns(len(msgs)) - self.costs.syscall_ns,
                    label="batch_surplus",
                )
            self.cpus[proc.core_id].execute(work, "rx_copy").add_callback(
                lambda _s: result.succeed(msgs)
            )

        woken.add_callback(_after_wake)
        return result

    def deliver(self, pkt: Packet) -> None:
        """RX entry from the NIC: protocol processing, INPUT filtering,
        socket demux, and waking any blocked reader."""
        staged = self._rx_stage(pkt)
        if staged is None:
            return
        sock, verdict, work = staged
        core = self.cpus[sock.owner.core_id if sock else 0]
        # trace: stage spans charged in _rx_stage; waits absorbed at _rx_effect.
        done = core.execute(work, "rx")
        done.add_callback(lambda _sig: self._rx_effect(pkt, sock, verdict))

    def deliver_burst(self, pkts: Sequence[Packet]) -> None:
        """NAPI-style RX entry: one softirq processes a whole burst.

        Protocol/filter/demux work is still charged per packet, but it is
        serialized under a single core-execute event per core — the burst
        amortizes scheduling, not protocol work.
        """
        per_core: "dict[int, list[tuple[Packet, Optional[KernelSocket], str]]]" = {}
        core_work: "dict[int, int]" = {}
        for pkt in pkts:
            staged = self._rx_stage(pkt)
            if staged is None:
                continue
            sock, verdict, work = staged
            core_id = sock.owner.core_id if sock else 0
            per_core.setdefault(core_id, []).append((pkt, sock, verdict))
            core_work[core_id] = core_work.get(core_id, 0) + work
        for core_id, staged_pkts in per_core.items():
            self.metrics.counter("rx_bursts").inc()

            def _after_rx(_sig: Signal, staged_pkts=staged_pkts) -> None:
                for pkt, sock, verdict in staged_pkts:
                    self._rx_effect(pkt, sock, verdict)

            # trace: stage spans charged in _rx_stage; waits absorbed at _rx_effect.
            self.cpus[core_id].execute(core_work[core_id], "rx_burst").add_callback(_after_rx)

    def _rx_stage(self, pkt: Packet):
        """Shared demux/filter stage; returns (sock, verdict, work_ns) or
        None for non-IP traffic (handled inline)."""
        ft = pkt.five_tuple
        if ft is None:
            self._run_taps(pkt)
            self.metrics.counter("rx_non_ip").inc()
            return None
        sock = self.sockets.lookup(ft.proto, ft.dport)
        owner = owner_info(sock.owner) if sock else None
        if owner is not None:
            # The kernel attributes inbound packets at socket demux time.
            pkt.meta.owner_pid, pkt.meta.owner_uid, pkt.meta.owner_comm = owner
            self._tenant_stamp(pkt, sock.owner)
        ctx = pkt.meta.trace
        fp = self.fastpath
        if fp is not None:
            # Demux and attribution still ran above (the cache elides the
            # rule walk, never the kernel's process view); scope on the
            # owning pid so owner rules stay a function of the key.
            scope = owner[0] if owner is not None else None
            entry = fp.lookup(CHAIN_INPUT, ft, scope)
            if entry is not None:
                work = (
                    charge(STAGE_PROTO, self.costs.kernel_rx_pkt_ns, ctx,
                           label="rx_proto")
                    + charge(STAGE_FASTPATH, fp.hit_ns, ctx, label="input_chain")
                    + charge(STAGE_PROTO, self.costs.socket_demux_ns, ctx,
                             label="demux")
                )
                return sock, entry.verdict, work
            verdict, examined = self.filters.evaluate(CHAIN_INPUT, pkt, owner)
            fp.install(CHAIN_INPUT, ft, scope, verdict=verdict, points=("netfilter",))
        else:
            verdict, examined = self.filters.evaluate(CHAIN_INPUT, pkt, owner)
        work = (
            charge(STAGE_PROTO, self.costs.kernel_rx_pkt_ns, ctx, label="rx_proto")
            + charge(STAGE_NETFILTER, examined * self.costs.netfilter_rule_ns,
                     ctx, label="input_chain")
            + charge(STAGE_PROTO, self.costs.socket_demux_ns, ctx, label="demux")
        )
        return sock, verdict, work

    def _rx_effect(self, pkt: Packet, sock: Optional[KernelSocket], verdict: str) -> None:
        if pkt.meta.trace is not None:
            # Whatever elapsed beyond the charged NIC/softirq spans is time
            # spent queued behind the core or burst siblings.
            pkt.meta.trace.fill_gap(STAGE_SCHED_WAKE, self.sim.now, label="softirq_wait")
            pkt.meta.trace.close(self.sim.now)
        self._run_taps(pkt)
        if verdict == DROP:
            self.metrics.counter("rx_filtered").inc()
            return
        if sock is None:
            self.metrics.counter("rx_no_socket").inc()
            return
        ft = pkt.five_tuple
        payload = pkt.payload_len
        msg = (payload, ft.src_ip, ft.sport)
        sock.rx_bytes += payload
        self.metrics.counter("rx_pkts").inc()
        waiter = self._rx_waiters.pop(sock.port, None)
        if waiter is not None:
            proc, _woken = waiter
            self.scheduler.wake(proc, value=msg)
        else:
            sock.rx_queue.append(msg)

    def deliver_fluid(self, sock: KernelSocket, n: int, payload_len: int,
                      src_ip, sport: int) -> None:
        """Bulk counterpart of the :meth:`_rx_effect` delivery tail for a
        fast-forwarded epoch: ``n`` same-shape messages land on the socket
        exactly as ``n`` packet-level deliveries would — bytes/packet
        counters move, a blocked reader wakes for the first, the rest
        queue. Read-side costs stay exact by construction: ``recv``/
        ``recvmmsg`` charge the per-message copy at read time."""
        msg = (payload_len, src_ip, sport)
        sock.rx_bytes += n * payload_len
        self.metrics.counter("rx_pkts").inc(n)
        waiter = self._rx_waiters.pop(sock.port, None)
        if waiter is not None:
            proc, _woken = waiter
            self.scheduler.wake(proc, value=msg)
            n -= 1
        if n:
            sock.rx_queue.extend([msg] * n)

    # --- introspection ----------------------------------------------------------

    def connect(self, proc: Process, sock: KernelSocket, ip: IPv4Address, port: int) -> Signal:
        """Record the peer (connection setup syscall)."""
        sock.connect(ip, port)
        return self.syscalls.invoke(proc, "connect")

    def add_vip(self, ip: IPv4Address) -> None:
        """Mark this host as a backend for a cluster virtual IP."""
        self.vips.add(ip)

    def serves_vip(self, ip: IPv4Address) -> bool:
        return ip in self.vips
