"""The `python -m repro` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_help(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "report" in out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_costs(self, capsys):
        assert main(["costs"]) == 0
        out = capsys.readouterr().out
        assert "syscall_ns = 500" in out
        assert "derived.ddio_capacity_bytes" in out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_single_experiment(self, capsys):
        assert main(["f1"]) == 0
        out = capsys.readouterr().out
        assert "Figure-1 arrows verified" in out

    def test_matrix(self, capsys):
        assert main(["matrix"]) == 0
        out = capsys.readouterr().out
        assert "kopi=4/4" in out

    def test_quick_report(self, capsys):
        assert main(["report", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E1 (reduced)" in out
        assert "E8 (reduced)" in out
