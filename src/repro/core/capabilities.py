"""The capability matrix — §2's four scenarios, measured, not asserted.

Each probe builds a fresh testbed around a dataplane class and *runs* the
scenario; a cell is "yes" only when the mechanism demonstrably worked (the
violating packet was dropped, the blocked thread actually slept, the
capture was attributable...). This keeps the E3 table honest: it is derived
from the same machinery the other experiments measure.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from ..errors import ReproError, UnsupportedOperation
from ..kernel.netfilter import ACCEPT, CHAIN_OUTPUT, DROP, NetfilterRule
from ..net.headers import PROTO_UDP
from ..sim import SimProcess
from ..dataplanes.base import Dataplane, QosConfig
from ..dataplanes.testbed import PEER_IP, Testbed

SCENARIO_DEBUGGING = "debugging"
SCENARIO_PORTS = "port_partitioning"
SCENARIO_SCHED = "process_scheduling"
SCENARIO_QOS = "qos"

SCENARIOS = (SCENARIO_DEBUGGING, SCENARIO_PORTS, SCENARIO_SCHED, SCENARIO_QOS)


def _probe_debugging(tb: Testbed) -> bool:
    """Can the admin see all apps' traffic AND attribute it to processes?"""
    session = tb.dataplane.start_capture(name="probe")  # may raise
    a = tb.spawn("app-a", "bob", core_id=1)
    b = tb.spawn("app-b", "charlie", core_id=2)
    ep_a = tb.dataplane.open_endpoint(a, PROTO_UDP, 6000)
    ep_b = tb.dataplane.open_endpoint(b, PROTO_UDP, 6001)
    ep_a.send(64, dst=(PEER_IP, 9000))
    ep_b.send(64, dst=(PEER_IP, 9001))
    tb.run_all()
    if len(session.packets) < 2:
        return False  # no global view
    owners = {tb.dataplane.attribution_of(p) for p in session.packets}
    return None not in owners  # process view present


def _probe_ports(tb: Testbed) -> bool:
    """Is 'only Bob's postgres may send to 5432' enforceable?"""
    bob = tb.user("bob")
    tb.dataplane.install_filter_rule(
        NetfilterRule(verdict=ACCEPT, chain=CHAIN_OUTPUT, dport=5432,
                      uid_owner=bob.uid, cmd_owner="postgres")
    )
    tb.dataplane.install_filter_rule(
        NetfilterRule(verdict=DROP, chain=CHAIN_OUTPUT, dport=5432)
    )
    rogue = tb.spawn("rogue", "charlie", core_id=1)
    ep = tb.dataplane.open_endpoint(rogue, PROTO_UDP, 6000)
    # Policy installation is asynchronous on programmable hardware (an
    # overlay load takes ~50 us); wait on the engine's commit notification —
    # step the clock only until every pending policy commit is live.
    committed = tb.machine.interpose.all_committed()
    while not committed.triggered and tb.sim.step():
        pass
    ep.send(64, dst=(PEER_IP, 5432))
    tb.run_all()
    violations = sum(
        1 for p in tb.peer.received
        if p.five_tuple is not None and p.five_tuple.dport == 5432
    )
    return violations == 0


def _probe_sched(tb: Testbed) -> bool:
    """Can a reader block (core idle) and still be woken on arrival?"""
    if not tb.dataplane.supports_blocking_io:
        return False
    proc = tb.spawn("sleeper", "bob", core_id=1)
    ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
    got: List[object] = []

    def server():
        msg = yield ep.recv(blocking=True)
        got.append(msg)

    SimProcess(tb.sim, server())
    tb.sim.after(1_000_000, tb.peer.send_udp, 555, 7000, 64)
    tb.run_all()
    woken = len(got) == 1
    idle = tb.machine.cpus[1].busy_ns < 200_000  # ~1 ms wait, core mostly idle
    return woken and idle


def _probe_qos(tb: Testbed) -> bool:
    """Is cgroup-weighted shaping accepted (and wired to the scheduler)?"""
    tb.kernel.cgroups.create("/games")
    tb.kernel.cgroups.create("/work")
    tb.dataplane.configure_qos(QosConfig(weights_by_cgroup={"/games": 1, "/work": 9}))
    return True


_PROBES: Dict[str, Callable[[Testbed], bool]] = {
    SCENARIO_DEBUGGING: _probe_debugging,
    SCENARIO_PORTS: _probe_ports,
    SCENARIO_SCHED: _probe_sched,
    SCENARIO_QOS: _probe_qos,
}


def capability_matrix(plane_classes: List[Type[Dataplane]]) -> Dict[str, Dict[str, str]]:
    """Run every scenario against every dataplane class.

    Cell values: ``"yes"``, ``"no (<reason>)"``, or ``"failed"`` when the
    mechanism was accepted but did not actually enforce/observe.
    """
    matrix: Dict[str, Dict[str, str]] = {}
    for cls in plane_classes:
        row: Dict[str, str] = {}
        for scenario in SCENARIOS:
            try:
                tb = Testbed(cls)
                ok = _PROBES[scenario](tb)
                row[scenario] = "yes" if ok else "no (mechanism ineffective)"
            except UnsupportedOperation as exc:
                row[scenario] = f"no ({_first_clause(str(exc))})"
            except ReproError as exc:  # unexpected library failure: surface it
                row[scenario] = f"error ({type(exc).__name__})"
        matrix[cls.name] = row
    return matrix


def _first_clause(text: str) -> str:
    return text.split(":")[0].strip()


def render_matrix(matrix: Dict[str, Dict[str, str]]) -> str:
    """ASCII table for the E3 report."""
    planes = list(matrix)
    col0 = max(len(s) for s in SCENARIOS) + 2
    widths = {p: max(len(p), max(len(matrix[p][s]) for s in SCENARIOS)) + 2 for p in planes}
    lines = ["".ljust(col0) + "".join(p.ljust(widths[p]) for p in planes)]
    for scenario in SCENARIOS:
        row = scenario.ljust(col0)
        for p in planes:
            row += matrix[p][scenario].ljust(widths[p])
        lines.append(row)
    return "\n".join(lines)
