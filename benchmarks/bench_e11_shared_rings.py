"""E11 — §5 ablation: shared rings flatten the connection-scaling cliff."""

from repro.experiments.common import fmt_table
from repro.experiments.e11_shared_rings import headline, run_e11


def test_e11_shared_rings(once):
    rows = once(run_e11, packets_per_point=8_192)
    print("\n" + fmt_table(rows))
    h = headline(rows)
    per_conn = {r["connections"]: r for r in rows if r["mode"] == "per-conn"}
    shared = {r["connections"]: r for r in rows if r["mode"] == "shared"}
    # Shared mode holds line rate at every point.
    assert all(r["line_rate_pct"] > 99 for r in shared.values())
    # Per-connection mode collapses at the top of the sweep.
    assert per_conn[4_096]["line_rate_pct"] < 90
    assert h["shared_goodput_gbps"] > h["per_conn_goodput_gbps"]
    # The price: the hot set no longer scales with connections because the
    # rings are no longer per-connection.
    assert shared[4_096]["hot_set_mib"] < 1
