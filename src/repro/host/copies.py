"""End-to-end copy accounting: where every packet byte gets moved, by whom.

The paper's §1 argument is that kernel interposition pays for itself in
*data movement* — per-byte copies across the user/kernel boundary (virtual
movement), cache-line migration to a sidecar core (physical movement) — and
that NIC-resident interposition keeps the interposition while eliding the
copies. The :class:`CopyLedger` makes that claim measurable: every layer
that moves packet bytes charges the ledger explicitly, so any run can
report bytes-copied, copy operations, and ns-spent-copying *per layer*.

Two kinds of entries:

* ``charge`` — bytes actually moved (by the CPU, the coherence fabric, or
  a DMA engine) plus the nanoseconds that movement cost. Charging is
  observational: the cost itself is still paid wherever it always was, so
  attaching the ledger never changes simulated timing.
* ``elide`` — bytes a zero-copy mode *avoided* moving, plus the fixed
  per-operation cost (pinning, completion notification) paid instead.
  With every elision mode off, all elision counters stay at zero.

Layer names are free-form strings; the constants below are the ones the
built-in planes use. ``CPU_COPY_LAYERS`` is the subset where a CPU (or the
coherence fabric on the CPU's behalf) touches every byte — the movement
§1 says interposition should not cost. DMA layers move the same bytes in
hardware; they are accounted separately so E13 can show the distinction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

LAYER_KERNEL_TX = "kernel_tx"
"""User -> kernel payload copy on the TX syscall path."""

LAYER_KERNEL_RX = "kernel_rx"
"""Kernel -> user payload copy on the RX syscall path."""

LAYER_COHERENCE = "coherence"
"""Cross-core cache-line migration (the sidecar's physical movement)."""

LAYER_HV_VRING = "hv_vring"
"""Hypervisor vring traversal: guest-posted descriptors + payload pulled
through the vswitch on the NIC."""

LAYER_DMA = "dma"
"""PCIe DMA transactions between NIC and host memory (hardware movement)."""

LAYER_DMA_DIRECT = "dma_direct"
"""Zero-copy deliveries straight into application-visible rings (bypass /
KOPI), landing in the LLC via DDIO — no CPU ever touches the bytes."""

CPU_COPY_LAYERS = (LAYER_KERNEL_TX, LAYER_KERNEL_RX, LAYER_COHERENCE, LAYER_HV_VRING)
"""Layers whose bytes are moved by (or on behalf of) a CPU — the §1 cost."""


class LayerLedger:
    """Copy accounting for one layer."""

    __slots__ = ("layer", "bytes_copied", "copies", "ns_copying",
                 "bytes_elided", "elisions", "ns_elision_overhead")

    def __init__(self, layer: str):
        self.layer = layer
        self.bytes_copied = 0
        self.copies = 0
        self.ns_copying = 0
        self.bytes_elided = 0
        self.elisions = 0
        self.ns_elision_overhead = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LayerLedger {self.layer} copied={self.bytes_copied}B/"
            f"{self.ns_copying}ns elided={self.bytes_elided}B>"
        )


class CopyLedger:
    """Per-layer accounting of every byte moved (or elided) in one machine."""

    def __init__(self) -> None:
        self._layers: Dict[str, LayerLedger] = {}

    def layer(self, name: str) -> LayerLedger:
        entry = self._layers.get(name)
        if entry is None:
            entry = self._layers[name] = LayerLedger(name)
        return entry

    def layers(self) -> List[LayerLedger]:
        return list(self._layers.values())

    # --- recording ----------------------------------------------------------

    def charge(self, layer: str, nbytes: int, ns: int, ops: int = 1) -> None:
        """Record ``nbytes`` actually moved at ``layer`` costing ``ns``
        (already paid by the caller — the ledger never adds cost)."""
        if nbytes < 0 or ns < 0 or ops < 0:
            raise ValueError(
                f"ledger charge cannot be negative: {layer} {nbytes}B {ns}ns"
            )
        entry = self.layer(layer)
        entry.bytes_copied += nbytes
        entry.copies += ops
        entry.ns_copying += ns

    def elide(self, layer: str, nbytes: int, overhead_ns: int = 0, ops: int = 1) -> None:
        """Record ``nbytes`` a zero-copy mode avoided moving at ``layer``,
        and the fixed per-operation overhead (pinning, completion
        notification) paid in exchange."""
        if nbytes < 0 or overhead_ns < 0 or ops < 0:
            raise ValueError(
                f"ledger elision cannot be negative: {layer} {nbytes}B"
            )
        entry = self.layer(layer)
        entry.bytes_elided += nbytes
        entry.elisions += ops
        entry.ns_elision_overhead += overhead_ns

    # --- aggregation ---------------------------------------------------------

    def bytes_copied(self, layers: Optional[Iterable[str]] = None) -> int:
        return sum(e.bytes_copied for e in self._select(layers))

    def ns_copying(self, layers: Optional[Iterable[str]] = None) -> int:
        return sum(e.ns_copying for e in self._select(layers))

    def copies(self, layers: Optional[Iterable[str]] = None) -> int:
        return sum(e.copies for e in self._select(layers))

    def bytes_elided(self, layers: Optional[Iterable[str]] = None) -> int:
        return sum(e.bytes_elided for e in self._select(layers))

    def elision_overhead_ns(self, layers: Optional[Iterable[str]] = None) -> int:
        return sum(e.ns_elision_overhead for e in self._select(layers))

    def cpu_bytes_copied(self) -> int:
        """Bytes moved by a CPU — §1's interposition tax."""
        return self.bytes_copied(CPU_COPY_LAYERS)

    def cpu_ns_copying(self) -> int:
        return self.ns_copying(CPU_COPY_LAYERS)

    def _select(self, layers: Optional[Iterable[str]]) -> List[LayerLedger]:
        if layers is None:
            return list(self._layers.values())
        return [self._layers[l] for l in layers if l in self._layers]

    def snapshot(self) -> Dict[str, int]:
        """Flat per-layer view (for reports and tests)."""
        out: Dict[str, int] = {}
        for name in sorted(self._layers):
            entry = self._layers[name]
            out[f"{name}.bytes_copied"] = entry.bytes_copied
            out[f"{name}.copies"] = entry.copies
            out[f"{name}.ns_copying"] = entry.ns_copying
            out[f"{name}.bytes_elided"] = entry.bytes_elided
            out[f"{name}.elisions"] = entry.elisions
            out[f"{name}.ns_elision_overhead"] = entry.ns_elision_overhead
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CopyLedger layers={sorted(self._layers)}>"
