"""netfilter-style rule chains with owner matching.

The port-partitioning scenario of §2 is exactly an iptables rule with
``-m owner --cmd-owner postgres --uid-owner bob``: a match that needs the
process view. :class:`RuleTable` evaluates chains against a packet plus the
kernel-supplied owner triple; rules that require an owner simply never match
packets whose owner is unknown — which is how off-host interposers fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import PolicyError
from ..net.addresses import IPv4Address
from ..net.packet import Packet
from ..sim import MetricSet

CHAIN_INPUT = "INPUT"
CHAIN_OUTPUT = "OUTPUT"
_CHAINS = (CHAIN_INPUT, CHAIN_OUTPUT)

ACCEPT = "ACCEPT"
DROP = "DROP"
_VERDICTS = (ACCEPT, DROP)

OwnerTriple = Tuple[int, int, str]  # (pid, uid, comm)


@dataclass
class NetfilterRule:
    """One rule: header matches + optional owner matches + verdict.

    ``None`` fields are wildcards. ``uid_owner``/``cmd_owner``/``pid_owner``
    require the evaluator to supply the packet's owner; without one the rule
    does not match (matching Linux semantics, where the owner module only
    matches locally-generated, socket-attributed traffic).
    """

    verdict: str
    chain: str = CHAIN_OUTPUT
    proto: Optional[int] = None
    src_ip: Optional[IPv4Address] = None
    dst_ip: Optional[IPv4Address] = None
    sport: Optional[int] = None
    dport: Optional[int] = None
    uid_owner: Optional[int] = None
    cmd_owner: Optional[str] = None
    pid_owner: Optional[int] = None
    comment: str = ""
    packets: int = field(default=0, compare=False)
    bytes: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.verdict not in _VERDICTS:
            raise PolicyError(f"unknown verdict: {self.verdict!r}")
        if self.chain not in _CHAINS:
            raise PolicyError(f"unknown chain: {self.chain!r}")

    @property
    def needs_owner(self) -> bool:
        return any(v is not None for v in (self.uid_owner, self.cmd_owner, self.pid_owner))

    def matches(self, pkt: Packet, owner: Optional[OwnerTriple]) -> bool:
        ft = pkt.five_tuple
        if ft is None:
            return False
        if self.proto is not None and ft.proto != self.proto:
            return False
        if self.src_ip is not None and ft.src_ip != self.src_ip:
            return False
        if self.dst_ip is not None and ft.dst_ip != self.dst_ip:
            return False
        if self.sport is not None and ft.sport != self.sport:
            return False
        if self.dport is not None and ft.dport != self.dport:
            return False
        if self.needs_owner:
            if owner is None:
                return False
            pid, uid, comm = owner
            if self.pid_owner is not None and pid != self.pid_owner:
                return False
            if self.uid_owner is not None and uid != self.uid_owner:
                return False
            if self.cmd_owner is not None and comm != self.cmd_owner:
                return False
        return True

    def describe(self) -> str:
        parts = [f"-A {self.chain}"]
        if self.proto is not None:
            parts.append(f"-p {self.proto}")
        if self.src_ip is not None:
            parts.append(f"-s {self.src_ip}")
        if self.dst_ip is not None:
            parts.append(f"-d {self.dst_ip}")
        if self.sport is not None:
            parts.append(f"--sport {self.sport}")
        if self.dport is not None:
            parts.append(f"--dport {self.dport}")
        if self.needs_owner:
            parts.append("-m owner")
            if self.uid_owner is not None:
                parts.append(f"--uid-owner {self.uid_owner}")
            if self.cmd_owner is not None:
                parts.append(f"--cmd-owner {self.cmd_owner}")
            if self.pid_owner is not None:
                parts.append(f"--pid-owner {self.pid_owner}")
        parts.append(f"-j {self.verdict}")
        return " ".join(parts)


class RuleTable:
    """Ordered rule chains with ACCEPT default policy and hit counters."""

    def __init__(self, default_verdict: str = ACCEPT):
        if default_verdict not in _VERDICTS:
            raise PolicyError(f"unknown default verdict: {default_verdict!r}")
        self.default_verdict = default_verdict
        self._chains: "dict[str, List[NetfilterRule]]" = {c: [] for c in _CHAINS}
        self.metrics = MetricSet("netfilter")
        self.update_count = 0

    def append(self, rule: NetfilterRule) -> None:
        self._chains[rule.chain].append(rule)
        self.update_count += 1

    def insert(self, rule: NetfilterRule, index: int = 0) -> None:
        self._chains[rule.chain].insert(index, rule)
        self.update_count += 1

    def delete(self, rule: NetfilterRule) -> None:
        try:
            self._chains[rule.chain].remove(rule)
        except ValueError as exc:
            raise PolicyError(f"rule not present: {rule.describe()}") from exc
        self.update_count += 1

    def flush(self, chain: Optional[str] = None) -> None:
        chains = [chain] if chain else list(self._chains)
        for c in chains:
            if c not in self._chains:
                raise PolicyError(f"unknown chain: {c!r}")
            self._chains[c].clear()
        self.update_count += 1

    def rules(self, chain: str) -> List[NetfilterRule]:
        if chain not in self._chains:
            raise PolicyError(f"unknown chain: {chain!r}")
        return list(self._chains[chain])

    def evaluate(
        self, chain: str, pkt: Packet, owner: Optional[OwnerTriple]
    ) -> "tuple[str, int]":
        """First-match evaluation. Returns (verdict, rules_examined); the
        caller converts rules_examined into CPU or NIC time."""
        if chain not in self._chains:
            raise PolicyError(f"unknown chain: {chain!r}")
        examined = 0
        for rule in self._chains[chain]:
            examined += 1
            if rule.matches(pkt, owner):
                rule.packets += 1
                rule.bytes += pkt.wire_len
                self.metrics.counter(f"{chain.lower()}_{rule.verdict.lower()}").inc()
                return rule.verdict, examined
        self.metrics.counter(f"{chain.lower()}_default").inc()
        return self.default_verdict, examined

    def total_rules(self) -> int:
        return sum(len(rules) for rules in self._chains.values())
