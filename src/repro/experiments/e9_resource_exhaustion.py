"""E9 — §5: "Can we prevent a KOPI from being vulnerable to resource
exhaustion?"

On-NIC SRAM holds per-connection state; it is small. We sweep SRAM size,
fill the NIC with connections, and measure (a) how many connections stay on
the fast path, (b) the throughput penalty for connections pushed to the
software fallback, and (c) the adversarial case: a greedy tenant exhausts
SRAM first, and the victim arriving later is degraded — exactly the attack
§5 worries about — followed by the mitigation (close the hog's
connections; the victim can re-open on the fast path).
"""

from __future__ import annotations

from typing import List

from .. import units
from ..config import DEFAULT_COSTS
from ..core import NormanOS
from ..dataplanes import Testbed
from ..net.headers import PROTO_UDP
from ..apps import BulkSender
from .common import Row, fmt_table

CONN_STATE = DEFAULT_COSTS.conn_state_bytes
SRAM_SWEEP = (8, 64, 512)  # in connections' worth of SRAM
OFFERED_CONNS = (4, 32, 256, 1_024)


def run_capacity_sweep() -> List[Row]:
    """How many connections fit before fallback begins, per SRAM size."""
    rows: List[Row] = []
    for sram_conns in SRAM_SWEEP:
        for offered in OFFERED_CONNS:
            tb = Testbed(NormanOS, smartnic_sram_bytes=sram_conns * CONN_STATE)
            proc = tb.spawn("srv", "bob", core_id=1)
            fallbacks = 0
            for i in range(offered):
                ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 10_000 + i)
                fallbacks += 1 if ep.conn.fallback else 0
            rows.append({
                "sram_kib": sram_conns * CONN_STATE / units.KB,
                "offered_conns": offered,
                "fast_path": offered - fallbacks,
                "fallback": fallbacks,
                "fallback_pct": 100 * fallbacks / offered,
            })
    return rows


def run_fallback_penalty(count: int = 200) -> List[Row]:
    """Throughput of one sender on the fast path vs the software fallback."""
    rows: List[Row] = []
    for label, sram_bytes in (("fast path", None), ("fallback", 1)):
        tb = Testbed(NormanOS, smartnic_sram_bytes=sram_bytes)
        app = BulkSender(tb, comm="bulk", user="bob", core_id=1,
                         payload_len=1_458, count=count).start()
        busy0 = tb.machine.cpus[1].busy_ns
        tb.run_all()
        rows.append({
            "path": label,
            "fallback": app.ep.conn.fallback,
            "goodput_gbps": app.goodput_bps() / units.GBPS,
            "cpu_ns_per_pkt": (tb.machine.cpus[1].busy_ns - busy0) / max(app.sent, 1),
        })
    return rows


def run_adversary() -> List[Row]:
    """Greedy tenant exhausts SRAM; victim degrades; mitigation restores."""
    sram_conns = 64
    tb = Testbed(NormanOS, smartnic_sram_bytes=sram_conns * CONN_STATE)
    hog = tb.spawn("hog", "charlie", core_id=2)
    hog_eps = [tb.dataplane.open_endpoint(hog, PROTO_UDP, 20_000 + i)
               for i in range(sram_conns)]
    victim = tb.spawn("victim", "bob", core_id=1)
    victim_ep = tb.dataplane.open_endpoint(victim, PROTO_UDP, 5_432)
    degraded = victim_ep.conn.fallback

    # Mitigation: the operator (who, under KOPI, can SEE per-process NIC
    # usage) kills the hog; the victim reconnects onto the fast path.
    for ep in hog_eps:
        ep.close()
    victim_ep.close()
    victim_ep2 = tb.dataplane.open_endpoint(victim, PROTO_UDP, 5_432)
    return [{
        "phase": "under attack", "victim_on_fallback": degraded,
        "sram_util_pct": 100.0,
    }, {
        "phase": "after mitigation", "victim_on_fallback": victim_ep2.conn.fallback,
        "sram_util_pct": 100 * tb.dataplane.nic.sram.utilization(),
    }]


def main() -> str:
    cap = run_capacity_sweep()
    pen = run_fallback_penalty()
    adv = run_adversary()
    fast = next(r for r in pen if r["path"] == "fast path")
    slow = next(r for r in pen if r["path"] == "fallback")
    return "\n".join([
        "capacity (fallback begins when connection state outgrows SRAM):",
        fmt_table(cap),
        "",
        "fallback penalty (same sender, same workload):",
        fmt_table(pen),
        "",
        "adversarial exhaustion:",
        fmt_table(adv),
        "",
        f"headline: fallback costs {slow['cpu_ns_per_pkt'] / fast['cpu_ns_per_pkt']:.1f}x "
        f"CPU per packet and {fast['goodput_gbps'] / max(slow['goodput_gbps'], 1e-9):.1f}x "
        "less throughput — degraded, not dead",
    ])


if __name__ == "__main__":
    print(main())
