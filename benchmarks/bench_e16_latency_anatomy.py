"""E16 — latency anatomy bench: the decomposition must be exact, cheap,
and exportable.

Replays the traced E1/E2 decomposition and asserts the acceptance shape:

* CPU attribution error ≤ 1% and traced latency == measured latency on
  every plane, with the per-packet conservation invariant ("no lost
  nanoseconds") holding everywhere.
* The stage table reproduces the paper's headline: with the same 8-rule
  chain installed, kernel placement burns >10x KOPI host CPU per packet —
  and the decomposition says *where* (syscall + proto vs NIC pipeline).
* Tracing is observational: the untraced replay of the same workload
  produces identical measured rows.

Writes ``e16_latency_anatomy.json`` next to the E12–E15 artifacts, a
sample Perfetto/Chrome trace (``e16_kernel_trace.json``, loadable at
https://ui.perfetto.dev), and the consolidated ``BENCH_PR5.json``
(events fired + wall seconds for the E8/E12/E15/E16 replays).
"""

import json
import time
from pathlib import Path

from repro.experiments.common import fmt_table, run_bulk_tx
from repro.experiments import e8_connection_scaling as e8
from repro.experiments import e12_batching as e12
from repro.experiments.e15_flow_fastpath import run_e15_planes
from repro.experiments.e16_latency_anatomy import headline, run_e16
from repro.dataplanes import KernelPathDataplane
from repro.sim import Simulator
from repro.trace import write_trace
from repro.config import DEFAULT_COSTS
from dataclasses import replace

ARTIFACT = Path(__file__).parent / "artifacts" / "e16_latency_anatomy.json"
SAMPLE_TRACE = Path(__file__).parent / "artifacts" / "e16_kernel_trace.json"
CONSOLIDATED = Path(__file__).parent / "artifacts" / "BENCH_PR5.json"


def _metered(fn, *args, **kwargs):
    """Run ``fn`` and return (result, total events fired across every
    simulator it built, wall seconds) — bench-local instrumentation."""
    sims = []
    orig_init = Simulator.__init__

    def _tracking_init(self):
        orig_init(self)
        sims.append(self)

    Simulator.__init__ = _tracking_init
    t0 = time.perf_counter()
    try:
        result = fn(*args, **kwargs)
    finally:
        Simulator.__init__ = orig_init
    seconds = time.perf_counter() - t0
    return result, sum(s.events_fired for s in sims), seconds


def test_e16_latency_anatomy(once):
    result, _events, _s = _metered(once, run_e16, count=192)
    print("\n" + fmt_table(result["rows"]))
    print("\n" + fmt_table(result["stage_rows"]))
    h = headline(result)
    print(f"\nheadline: kernel/KOPI cpu {h['kernel_vs_kopi_cpu_traced']:.1f}x "
          f"traced ({h['kernel_vs_kopi_cpu_measured']:.1f}x measured), "
          f"max cpu err {h['max_cpu_err_pct']:.3f}%, "
          f"conserved={h['all_conserved']}")

    # Acceptance: exact conservation, ≤1% attribution error, and the
    # paper's interposition-placement ratio recovered from the stages.
    assert h["all_conserved"]
    assert h["max_cpu_err_pct"] <= 1.0
    assert h["max_latency_err_pct"] <= 1.0
    assert h["kernel_vs_kopi_cpu_traced"] > 10.0

    # Observational: the untraced kernel replay measures identically.
    base = run_bulk_tx(KernelPathDataplane, 1_458, 192)
    traced = run_bulk_tx(KernelPathDataplane, 1_458, 192,
                         costs=replace(DEFAULT_COSTS, trace=True))
    assert base == traced

    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(
        json.dumps(
            {"headline": h, "rows": result["rows"],
             "stages": result["stage_rows"]},
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {ARTIFACT}")

    # A loadable sample: the kernel plane's first 32 packets, one
    # gap-free bar per packet (the visual form of the invariant).
    row = run_bulk_tx(KernelPathDataplane, 1_458, 64,
                      costs=replace(DEFAULT_COSTS, trace=True),
                      return_tb=True)
    n = write_trace(row.pop("tb").machine.tracer, SAMPLE_TRACE, limit=32)
    print(f"wrote {SAMPLE_TRACE} ({n} events)")


def test_bench_pr5_consolidated(once):
    """One artifact comparing the replay cost of the suite's heavy
    experiments on this tree: events fired and wall seconds each."""
    entries = {}
    _, ev, s = _metered(e8.run_e8, sweep=(256, 1_024), packets_per_point=4_096)
    entries["e8"] = {"events": ev, "seconds": s}
    _, ev, s = _metered(e12.run_e12, count=160, batches=(1, 16, 64))
    entries["e12"] = {"events": ev, "seconds": s}
    _, ev, s = _metered(run_e15_planes, count=192)
    entries["e15"] = {"events": ev, "seconds": s}
    result, ev, s = _metered(once, run_e16, count=192)
    entries["e16"] = {"events": ev, "seconds": s}
    entries["e16"]["kernel_vs_kopi_cpu"] = headline(result)[
        "kernel_vs_kopi_cpu_traced"
    ]

    CONSOLIDATED.parent.mkdir(parents=True, exist_ok=True)
    CONSOLIDATED.write_text(json.dumps(entries, indent=2) + "\n")
    for name, e in entries.items():
        print(f"{name}: {e['events']} events in {e['seconds']:.2f}s")
    print(f"wrote {CONSOLIDATED}")
