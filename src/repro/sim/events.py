"""One-shot signals (promises) and combinators.

A :class:`Signal` is the synchronization primitive everything else is built
on: processes yield signals to block, the kernel succeeds them to wake
threads, NICs succeed them to report completions.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ..errors import SimulationError

_PENDING = "pending"
_SUCCEEDED = "succeeded"
_FAILED = "failed"


class Signal:
    """A one-shot event that either succeeds with a value or fails with an
    exception. Callbacks attached after resolution run immediately."""

    __slots__ = ("name", "_state", "_value", "_exc", "_callbacks")

    def __init__(self, name: str = ""):
        self.name = name
        self._state = _PENDING
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: List[Callable[["Signal"], None]] = []

    # --- state ----------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once succeeded or failed."""
        return self._state != _PENDING

    @property
    def ok(self) -> bool:
        return self._state == _SUCCEEDED

    @property
    def failed(self) -> bool:
        return self._state == _FAILED

    @property
    def value(self) -> Any:
        if self._state != _SUCCEEDED:
            raise SimulationError(f"signal {self.name!r} has no value (state={self._state})")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # --- resolution -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Signal":
        """Resolve successfully; runs callbacks synchronously."""
        if self._state != _PENDING:
            raise SimulationError(f"signal {self.name!r} already {self._state}")
        self._state = _SUCCEEDED
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Signal":
        """Resolve with an error; runs callbacks synchronously."""
        if self._state != _PENDING:
            raise SimulationError(f"signal {self.name!r} already {self._state}")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._state = _FAILED
        self._exc = exc
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["Signal"], None]) -> None:
        """Run ``cb(self)`` on resolution (immediately if already resolved)."""
        if self.triggered:
            cb(self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Signal {self.name!r} {self._state}>"


class AllOf(Signal):
    """Succeeds when every child succeeds; fails fast on the first failure.

    The value is the list of child values in the order given.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, children: Sequence[Signal], name: str = "all_of"):
        super().__init__(name)
        self._children = list(children)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Signal) -> None:
        if self.triggered:
            return
        if child.failed:
            self.fail(child.exception)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Signal):
    """Succeeds (or fails) with the first child to resolve.

    The value is a ``(index, value)`` pair identifying the winner.
    """

    __slots__ = ("_children",)

    def __init__(self, children: Sequence[Signal], name: str = "any_of"):
        super().__init__(name)
        self._children = list(children)
        if not self._children:
            raise SimulationError("AnyOf needs at least one child signal")
        for idx, child in enumerate(self._children):
            child.add_callback(lambda c, i=idx: self._on_child(i, c))

    def _on_child(self, idx: int, child: Signal) -> None:
        if self.triggered:
            return
        if child.failed:
            self.fail(child.exception)  # type: ignore[arg-type]
        else:
            self.succeed((idx, child.value))
