"""Kernel ARP cache.

The §2 debugging story: with the kernel stack, the ARP cache is a single
place an administrator can inspect to attribute ARP traffic; with kernel
bypass every application speaks its own ARP and the kernel cache is blind.
The KOPI dataplane repopulates this view by observing ARP on the NIC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..net.addresses import IPv4Address, MacAddress
from ..net.packet import Packet
from ..sim import MetricSet


@dataclass
class ArpEntry:
    ip: IPv4Address
    mac: MacAddress
    updated_ns: int
    source_pid: Optional[int] = None
    """Populated only when the observing layer had a process view."""


class ArpCache:
    """IP -> MAC mapping learned from observed ARP traffic."""

    def __init__(self) -> None:
        self._entries: Dict[IPv4Address, ArpEntry] = {}
        self.metrics = MetricSet("arp")

    def observe(self, pkt: Packet, now_ns: int) -> Optional[ArpEntry]:
        """Learn from an ARP packet (request or reply). Returns the entry, or
        None for a non-ARP packet."""
        if pkt.arp is None:
            return None
        entry = ArpEntry(
            ip=pkt.arp.sender_ip,
            mac=pkt.arp.sender_mac,
            updated_ns=now_ns,
            source_pid=pkt.meta.owner_pid,
        )
        self._entries[entry.ip] = entry
        self.metrics.counter("observed").inc()
        return entry

    def lookup(self, ip: IPv4Address) -> Optional[ArpEntry]:
        return self._entries.get(ip)

    def entries(self) -> List[ArpEntry]:
        return sorted(self._entries.values(), key=lambda e: e.ip)

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
