"""repro — a full-system reproduction of *We Need Kernel Interposition over
the Network Dataplane* (KOPI / Norman, HotOS '21).

The paper's hardware (a Linux fork + an FPGA SmartNIC) is replaced by a
deterministic discrete-event simulated host; everything else — the Norman
OS, the admin tools, and every architecture the paper argues against — is
implemented for real. Quick tour::

    from repro import NormanOS, Testbed, PROTO_UDP, PEER_IP

    tb = Testbed(NormanOS)                       # host + SmartNIC + peer
    app = tb.spawn("postgres", "bob", core_id=1) # process view
    ep = tb.dataplane.open_endpoint(app, PROTO_UDP, 5432)
    ep.send(256, dst=(PEER_IP, 9000))            # rings, not syscalls
    tb.run_all()

See ``examples/`` for the §2 scenarios and ``benchmarks/`` for every
experiment in DESIGN.md's index.
"""

from .config import DEFAULT_COSTS, CostModel
from .core import NormanOS
from .dataplanes import (
    BypassDataplane,
    HypervisorDataplane,
    KernelPathDataplane,
    QosConfig,
    SidecarDataplane,
    Testbed,
)
from .dataplanes.testbed import HOST_IP, HOST_MAC, PEER_IP, PEER_MAC
from .errors import ReproError
from .net.headers import PROTO_TCP, PROTO_UDP
from .sim import SimProcess, Simulator

__version__ = "0.1.0"

__all__ = [
    "BypassDataplane",
    "CostModel",
    "DEFAULT_COSTS",
    "HOST_IP",
    "HOST_MAC",
    "HypervisorDataplane",
    "KernelPathDataplane",
    "NormanOS",
    "PEER_IP",
    "PEER_MAC",
    "PROTO_TCP",
    "PROTO_UDP",
    "QosConfig",
    "ReproError",
    "SidecarDataplane",
    "SimProcess",
    "Simulator",
    "Testbed",
    "__version__",
]
