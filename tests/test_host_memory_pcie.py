"""Memory pinning, DMA engine, coherence fabric, Machine facade."""

import pytest

from repro import units
from repro.config import DEFAULT_COSTS
from repro.errors import SimulationError
from repro.host import CoherenceFabric, Machine, MemorySystem
from repro.sim import Simulator


class TestMemorySystem:
    def test_alloc_is_aligned_and_disjoint(self):
        mem = MemorySystem(total_bytes=1 * units.MB)
        a = mem.alloc_pinned(100, owner="app1")
        b = mem.alloc_pinned(100, owner="app2")
        assert a.base % 64 == 0 and b.base % 64 == 0
        assert a.end <= b.base
        assert a.size == 128  # rounded up to line

    def test_accounting_by_owner(self):
        mem = MemorySystem(total_bytes=1 * units.MB)
        mem.alloc_pinned(128, owner="alice")
        mem.alloc_pinned(256, owner="alice")
        mem.alloc_pinned(64, owner="bob")
        by_owner = mem.pinned_by_owner()
        assert by_owner == {"alice": 384, "bob": 64}
        assert mem.pinned_bytes == 448

    def test_exhaustion_raises(self):
        mem = MemorySystem(total_bytes=256)
        mem.alloc_pinned(256, owner="x")
        with pytest.raises(SimulationError):
            mem.alloc_pinned(1, owner="x")

    def test_free_and_double_free(self):
        mem = MemorySystem(total_bytes=1 * units.MB)
        r = mem.alloc_pinned(64, owner="x")
        mem.free(r)
        assert mem.pinned_bytes == 0
        with pytest.raises(SimulationError):
            mem.free(r)

    def test_line_addrs_cover_region(self):
        mem = MemorySystem(total_bytes=1 * units.MB)
        r = mem.alloc_pinned(200, owner="x")
        lines = r.line_addrs()
        assert len(lines) == 4  # 256 bytes -> 4 lines
        assert all(a % 64 == 0 for a in lines)

    def test_contains(self):
        mem = MemorySystem(total_bytes=1 * units.MB)
        r = mem.alloc_pinned(64, owner="x")
        assert r.contains(r.base)
        assert not r.contains(r.end)


class TestDmaEngine:
    def test_write_latency_includes_fixed_and_serialization(self):
        m = Machine(n_cores=1)
        region = m.memory.alloc_pinned(4_096, owner="nic")
        done_at = []
        m.dma.dma_write(region, 4_096).add_callback(lambda s: done_at.append(m.now))
        m.sim.run()
        expected = DEFAULT_COSTS.pcie_dma_latency_ns + units.transmit_time_ns(
            4_096, DEFAULT_COSTS.pcie_bandwidth_bps
        )
        assert done_at == [expected]

    def test_transfers_share_link_bandwidth(self):
        m = Machine(n_cores=1)
        region = m.memory.alloc_pinned(8_192, owner="nic")
        ends = []
        m.dma.dma_write(region, 4_096).add_callback(lambda s: ends.append(m.now))
        m.dma.dma_write(region, 4_096, offset=4_096).add_callback(
            lambda s: ends.append(m.now)
        )
        m.sim.run()
        ser = units.transmit_time_ns(4_096, DEFAULT_COSTS.pcie_bandwidth_bps)
        lat = DEFAULT_COSTS.pcie_dma_latency_ns
        assert ends == [ser + lat, 2 * ser + lat]

    def test_structural_cache_sees_dma_lines(self):
        m = Machine(n_cores=1, structural_cache=True)
        region = m.memory.alloc_pinned(256, owner="nic")
        m.dma.dma_write(region, 256)
        m.sim.run()
        assert m.llc is not None
        assert m.llc.stats["dma_fills"] == 4
        assert all(m.llc.cpu_read(a) for a in region.line_addrs())

    def test_out_of_bounds_dma_rejected(self):
        m = Machine(n_cores=1)
        region = m.memory.alloc_pinned(64, owner="nic")
        with pytest.raises(SimulationError):
            m.dma.dma_write(region, 128)
        with pytest.raises(SimulationError):
            m.dma.dma_read(region, 0)

    def test_mmio_costs(self):
        m = Machine(n_cores=1)
        assert m.dma.mmio_write_cost() == DEFAULT_COSTS.mmio_write_ns
        assert m.dma.mmio_read_cost() == DEFAULT_COSTS.mmio_read_ns
        assert m.dma.metrics.counter("mmio_writes").value == 1


class TestCoherenceFabric:
    def test_same_core_free(self):
        fab = CoherenceFabric(DEFAULT_COSTS)
        assert fab.transfer_cost_ns(1_500, src_core=1, dst_core=1) == 0
        assert fab.lines_moved == 0

    def test_cross_core_charges_per_line(self):
        fab = CoherenceFabric(DEFAULT_COSTS)
        cost = fab.transfer_cost_ns(1_500, src_core=0, dst_core=1)
        lines = -(-1_500 // 64)
        assert cost == lines * DEFAULT_COSTS.coherence_line_ns
        assert fab.lines_moved == lines

    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            CoherenceFabric(DEFAULT_COSTS).transfer_cost_ns(-1, 0, 1)


class TestMachine:
    def test_default_machine_uses_analytic_model(self):
        m = Machine()
        assert m.llc is None
        assert m.ddio_model.hit_rate(1) == 1.0

    def test_structural_machine_wires_cache_into_dma(self):
        m = Machine(structural_cache=True)
        assert m.dma.llc is m.llc

    def test_shared_simulator(self):
        sim = Simulator()
        m = Machine(sim=sim)
        assert m.sim is sim
        assert m.now == sim.now
