"""The stage taxonomy: every nanosecond charged anywhere in the simulator
belongs to exactly one of these stages.

The set mirrors the paper's anatomy of a packet's life (§1–§2): the
application's own work, the user/kernel crossing, payload copies, protocol
processing, interposition (rule walks and the verdict cache), queueing
disciplines, PCIe/DMA, descriptor rings, on-NIC pipelines, core-to-core
coherence traffic, scheduler wakeups/polling, and finally the wire itself.

``proto`` is the one stage beyond the headline taxonomy: kernel protocol
processing (``kernel_tx_pkt_ns`` / ``kernel_rx_pkt_ns`` / socket demux) is
neither a copy nor a filter walk, so it gets its own bucket rather than
polluting either.
"""

from __future__ import annotations

STAGE_APP = "app"                   # application-level work (serve loops, RPC think time)
STAGE_SYSCALL = "syscall"           # user/kernel crossing cost
STAGE_COPY = "copy"                 # payload copies (or their zero-copy pin/unpin residue)
STAGE_PROTO = "proto"               # kernel protocol processing + socket demux
STAGE_NETFILTER = "netfilter"       # interposition: rule walks, overlay filters, vswitch
STAGE_QDISC = "qdisc"               # qdisc enqueue bookkeeping + queue residency
STAGE_FASTPATH = "fastpath"         # megaflow-style verdict-cache hits
STAGE_DMA = "dma"                   # MMIO doorbells, PCIe DMA latency and descriptor fetches
STAGE_RING = "ring"                 # descriptor-ring produce/consume work and ring residency
STAGE_NIC_PIPELINE = "nic_pipeline" # on-NIC processing (parse/steer, SmartNIC stages)
STAGE_COHERENCE = "coherence"       # core-to-core cache-line movement, LLC/DRAM reads
STAGE_WIRE = "wire"                 # serialization + propagation (+ link backlog)
STAGE_SCHED_WAKE = "sched_wake"     # wakeups, context switches, interrupts, poll spins

#: Every stage, in pipeline-ish order (used by reports and exports).
STAGES = (
    STAGE_APP,
    STAGE_SYSCALL,
    STAGE_COPY,
    STAGE_PROTO,
    STAGE_NETFILTER,
    STAGE_QDISC,
    STAGE_FASTPATH,
    STAGE_DMA,
    STAGE_RING,
    STAGE_NIC_PIPELINE,
    STAGE_COHERENCE,
    STAGE_WIRE,
    STAGE_SCHED_WAKE,
)
