#!/usr/bin/env python3
"""Policy churn: one engine, versioned commits, per-plane install costs.

Every interposition mechanism on a machine — netfilter chains, qdiscs,
capture taps, NIC steering, SmartNIC overlay filters — registers with the
machine's PolicyEngine. A policy change is a versioned commit: synchronous
where the table is a kernel structure (live when the write returns), a
~50 us overlay load on KOPI (traffic keeps flowing under the old program
and is counted as stale), and a ~2 s offline window when the whole FPGA
image is replaced. This example toggles an iptables rule under a bulk
stream on three planes and prints what the engine recorded.

Run:  python examples/policy_churn.py         (~10 seconds)
"""

from repro.experiments.common import fmt_table
from repro.experiments.e14_policy_churn import (
    COLUMNS,
    UPGRADE_COLUMNS,
    run_e14,
    run_e14_upgrade,
)
from repro.dataplanes import KernelPathDataplane, Testbed


def main() -> None:
    # The registry itself: what can interpose on this machine, and where.
    tb = Testbed(KernelPathDataplane)
    print("interposition points on a kernel-path machine:")
    for point in tb.machine.interpose:
        print(
            f"  {point.name:<12} plane={point.plane:<10} "
            f"mechanism={point.mechanism:<10} "
            f"install={point.install_latency_ns} ns"
        )

    rows = run_e14(count=200, intervals=(None, 50_000, 10_000))
    print("\nchurn sweep (toggling a DROP rule under a bulk stream):")
    print(fmt_table(rows, columns=COLUMNS))

    print("\ncommit granularity on KOPI (ingress running):")
    print(fmt_table(run_e14_upgrade(), columns=UPGRADE_COLUMNS))
    print(
        "\nKernel and sidecar installs are synchronous — zero stale packets,"
        "\never. KOPI's enforcing copy lives in overlay slots: each commit is"
        "\na ~50 us load during which packets run (atomically) on the old"
        "\nversion. Full sweep: python -m repro e14"
    )


if __name__ == "__main__":
    main()
