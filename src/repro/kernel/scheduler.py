"""Blocking and waking threads.

The §2 process-scheduling scenario hinges on this: with the kernel stack (or
KOPI's notification queues), a thread can *block* and leave its core idle;
with raw kernel bypass it must poll. The scheduler charges honest costs for
the luxury of blocking — interrupt delivery, scheduler work, and a context
switch on the woken thread's core — and records block/wake latencies.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..config import CostModel
from ..errors import KernelError
from ..host.cpu import CpuSet
from ..sim import MetricSet, Signal, Simulator
from ..trace import STAGE_SCHED_WAKE
from .process import PROC_BLOCKED, PROC_RUNNING, Process


class KernelScheduler:
    """Block/wake machinery over a :class:`~repro.host.cpu.CpuSet`."""

    def __init__(self, sim: Simulator, cpus: CpuSet, costs: CostModel, tracer=None):
        self.sim = sim
        self.cpus = cpus
        self.costs = costs
        self.metrics = MetricSet("sched")
        self.tracer = tracer
        self._waiters: Dict[int, "tuple[Signal, int]"] = {}

    def block(self, proc: Process, reason: str = "") -> Signal:
        """Put ``proc`` to sleep. The returned signal fires (with the value
        passed to :meth:`wake`) once the thread is back on its core.

        The core is *not* occupied while blocked — that is the whole point.
        """
        if proc.pid in self._waiters:
            raise KernelError(f"pid {proc.pid} is already blocked")
        proc.set_state(PROC_BLOCKED)
        woken = Signal(f"wake.pid{proc.pid}.{reason}")
        self._waiters[proc.pid] = (woken, self.sim.now)
        self.metrics.counter("blocks").inc()
        return woken

    def wake(self, proc: Process, value: Any = None, via_interrupt: bool = True) -> None:
        """Wake a blocked thread.

        Charges interrupt delivery (when ``via_interrupt``), scheduler
        bookkeeping, and a context switch, all on the thread's core, before
        the thread resumes.
        """
        entry = self._waiters.pop(proc.pid, None)
        if entry is None:
            raise KernelError(f"pid {proc.pid} is not blocked")
        woken, blocked_at = entry
        cost = self.costs.wakeup_schedule_ns + self.costs.context_switch_ns
        if via_interrupt:
            cost += self.costs.interrupt_ns
        if self.tracer is not None:
            # Wakes happen after the packet's context closes (delivery to the
            # socket queue), so this is loose per-message work, not a span.
            self.tracer.loose(STAGE_SCHED_WAKE, cost,
                              label="irq_wake" if via_interrupt else "wake")
        core = self.cpus[proc.core_id]
        resume = core.execute(cost, label=f"wake-pid{proc.pid}")

        def _resumed(_sig: Signal) -> None:
            proc.set_state(PROC_RUNNING)
            self.metrics.histogram("block_ns").observe(self.sim.now - blocked_at)
            self.metrics.counter("wakes").inc()
            woken.succeed(value)

        resume.add_callback(_resumed)

    def is_blocked(self, pid: int) -> bool:
        return pid in self._waiters

    @property
    def blocked_count(self) -> int:
        return len(self._waiters)

    def wake_latency_ns(self, via_interrupt: bool = True) -> int:
        """The fixed cost a wake adds before the thread runs again."""
        cost = self.costs.wakeup_schedule_ns + self.costs.context_switch_ns
        if via_interrupt:
            cost += self.costs.interrupt_ns
        return cost
