"""E13 — zero-copy bench: the copy-elision crossover, plus wall-clock.

Two jobs:

* Replay the E13 sweep and assert its acceptance shape — zerocopy loses
  below the pinning break-even, wins above it, and the sidecar's per-byte
  coherence copies don't move at all.
* Record the simulator's own performance. This PR also slots ``Packet``,
  caches ``wire_len``, and removes the double heap traversal in
  ``Simulator.run``, so the artifact carries events-fired + wall-clock
  lines (copy vs zerocopy at a large message size) next to the E12 one —
  the start of the perf trajectory in ``BENCH_*.json``.
"""

import json
import time
from pathlib import Path

from repro.apps import BulkSender
from repro.config import DEFAULT_COSTS
from repro.dataplanes import KernelPathDataplane, Testbed
from repro.experiments.common import copy_summary, fmt_table
from repro.experiments.e13_zero_copy import (
    COLUMNS,
    SIZES,
    headline,
    run_e13,
)

ARTIFACT = Path(__file__).parent / "artifacts" / "e13_zero_copy.json"
WALL_COUNT = 2_048
WALL_PAYLOAD = 32_768  # well above the ~14 KB pinning break-even


def _run_wall_point(mode: str, count: int = WALL_COUNT):
    costs = (
        DEFAULT_COSTS.replace(tx_zerocopy=True, rx_zerocopy=True)
        if mode == "zerocopy"
        else DEFAULT_COSTS
    )
    tb = Testbed(KernelPathDataplane, costs=costs)
    app = BulkSender(tb, comm="bulk", user="bob", core_id=1,
                     payload_len=WALL_PAYLOAD, count=count)
    t0 = time.perf_counter()
    app.start()
    tb.run_all()
    wall_s = time.perf_counter() - t0
    copies = copy_summary(tb.machine.copies)
    return {
        "plane": "kernel",
        "mode": mode,
        "payload_B": WALL_PAYLOAD,
        "packets": app.sent,
        "sim_goodput_gbps": app.goodput_bps() / 1e9,
        "cpu_bytes_copied": copies["cpu_bytes_copied"],
        "cpu_ns_copying": copies["cpu_ns_copying"],
        "bytes_elided": copies["bytes_elided"],
        "events_fired": tb.sim.events_fired,
        "wall_s": wall_s,
        "wall_pkts_per_s": app.sent / wall_s if wall_s else 0.0,
    }


def test_e13_zero_copy(once):
    rows = once(run_e13, count=64)
    print("\n" + fmt_table(rows, columns=COLUMNS))
    h = headline(rows)
    # Acceptance: the crossover exists and brackets the modeled break-even —
    # zerocopy wins large kernel messages, loses below the pinning cost.
    assert h["crossover_measured_B"] is not None
    assert h["largest_losing_B"] is not None
    assert h["largest_losing_B"] < h["break_even_model_B"] <= h["crossover_measured_B"]
    assert h["kernel_large_msg_win_ns"] > 0
    assert h["kernel_small_msg_penalty_ns"] > 0
    # Sidecar coherence copies are per-byte physical movement: unaffected.
    assert h["sidecar_unaffected"]
    # Bypass-class planes were already zero-copy: the knobs are no-ops.
    assert h["bypass_unaffected"] and h["kopi_unaffected"]


def test_e13_wall_clock_artifact():
    points = [_run_wall_point("copy"), _run_wall_point("zerocopy")]
    cp, zc = points

    # Elision moves bytes out of the copied column, not into thin air.
    assert zc["bytes_elided"] == cp["cpu_bytes_copied"] > 0
    assert zc["cpu_bytes_copied"] == 0
    # Above break-even, the zerocopy run finishes the same simulated work
    # with at least the copy run's goodput.
    assert zc["sim_goodput_gbps"] >= cp["sim_goodput_gbps"]

    for p in points:
        # The perf-trajectory line: simulator cost of this workload.
        print(
            f"\nkernel/{p['mode']} @ {p['payload_B']} B: "
            f"{p['events_fired']} events, {p['wall_s'] * 1e3:.1f} ms wall, "
            f"{p['wall_pkts_per_s']:,.0f} pkt/s, "
            f"sim goodput {p['sim_goodput_gbps']:.1f} Gbps"
        )

    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(
        json.dumps({"sizes": list(SIZES), "points": points}, indent=2) + "\n"
    )
    print(f"wrote {ARTIFACT}")
