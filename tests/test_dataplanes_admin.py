"""Administrative capabilities per dataplane — the raw material of E3."""

import pytest

from repro.dataplanes import (
    BypassDataplane,
    HypervisorDataplane,
    KernelPathDataplane,
    QosConfig,
    SidecarDataplane,
    Testbed,
)
from repro.dataplanes.testbed import PEER_IP
from repro.errors import UnsupportedOperation
from repro.kernel import ACCEPT, DROP, NetfilterRule
from repro.net import PROTO_UDP, make_arp_request
from repro.sim import SimProcess


def owner_drop_rule(uid):
    return NetfilterRule(verdict=DROP, chain="OUTPUT", dport=5432, uid_owner=uid)


def header_drop_rule():
    return NetfilterRule(verdict=DROP, chain="OUTPUT", dport=5432)


class TestFilters:
    @pytest.mark.parametrize("plane", [KernelPathDataplane, SidecarDataplane], ids=lambda c: c.name)
    def test_owner_filter_enforced_on_host(self, plane):
        tb = Testbed(plane)
        bob = tb.user("bob")
        rogue = tb.spawn("rogue", "bob", core_id=1)
        tb.dataplane.install_filter_rule(owner_drop_rule(bob.uid))
        ep = tb.dataplane.open_endpoint(rogue, PROTO_UDP, 6000)
        results = []
        ep.send(100, dst=(PEER_IP, 5432)).add_callback(lambda s: results.append(s.value))
        ep.send(100, dst=(PEER_IP, 80)).add_callback(lambda s: results.append(s.value))
        tb.run_all()
        assert results == [False, True]
        assert len(tb.peer.received) == 1
        assert tb.peer.received[0].five_tuple.dport == 80

    def test_bypass_cannot_filter_at_all(self):
        tb = Testbed(BypassDataplane)
        with pytest.raises(UnsupportedOperation):
            tb.dataplane.install_filter_rule(header_drop_rule())

    def test_hypervisor_header_yes_owner_no(self):
        tb = Testbed(HypervisorDataplane)
        tb.dataplane.install_filter_rule(header_drop_rule())  # fine
        with pytest.raises(UnsupportedOperation):
            tb.dataplane.install_filter_rule(owner_drop_rule(1000))

    def test_hypervisor_header_filter_drops_on_wire(self):
        tb = Testbed(HypervisorDataplane)
        proc = tb.spawn("app", "bob", core_id=1)
        tb.dataplane.install_filter_rule(header_drop_rule())
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        ep.send(100, dst=(PEER_IP, 5432))
        ep.send(100, dst=(PEER_IP, 80))
        tb.run_all()
        assert len(tb.peer.received) == 1
        assert tb.dataplane.metrics.counter("dropped").value == 1


class TestQos:
    def test_kernel_and_sidecar_accept_cgroup_qos(self):
        for plane in (KernelPathDataplane, SidecarDataplane):
            tb = Testbed(plane)
            tb.kernel.cgroups.create("/games")
            tb.dataplane.configure_qos(QosConfig(weights_by_cgroup={"/games": 1, "/work": 3}))

    @pytest.mark.parametrize("plane", [BypassDataplane, HypervisorDataplane], ids=lambda c: c.name)
    def test_offpath_planes_refuse_cgroup_qos(self, plane):
        tb = Testbed(plane)
        with pytest.raises(UnsupportedOperation):
            tb.dataplane.configure_qos(QosConfig(weights_by_cgroup={"/games": 1}))

    def test_empty_qos_rejected(self):
        with pytest.raises(UnsupportedOperation):
            QosConfig(weights_by_cgroup={})


class TestCapture:
    @pytest.mark.parametrize("plane", [KernelPathDataplane, SidecarDataplane], ids=lambda c: c.name)
    def test_onhost_capture_is_attributed(self, plane):
        tb = Testbed(plane)
        proc = tb.spawn("postgres", "bob", core_id=1)
        session = tb.dataplane.start_capture()
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        ep.send(100, dst=(PEER_IP, 9000))
        tb.run_all()
        assert session.attributed
        assert len(session.packets) == 1
        assert tb.dataplane.attribution_of(session.packets[0])[2] == "postgres"
        session.stop()
        ep.send(100, dst=(PEER_IP, 9000))
        tb.run_all()
        assert len(session.packets) == 1

    def test_bypass_has_no_capture(self):
        tb = Testbed(BypassDataplane)
        with pytest.raises(UnsupportedOperation):
            tb.dataplane.start_capture()

    def test_hypervisor_capture_global_but_unattributed(self):
        tb = Testbed(HypervisorDataplane)
        a = tb.spawn("app-a", "bob", core_id=1)
        b = tb.spawn("app-b", "charlie", core_id=2)
        session = tb.dataplane.start_capture()
        tb.dataplane.open_endpoint(a, PROTO_UDP, 6000).send(10, dst=(PEER_IP, 1))
        tb.dataplane.open_endpoint(b, PROTO_UDP, 6001).send(10, dst=(PEER_IP, 2))
        tb.run_all()
        assert len(session.packets) == 2  # global view: both apps' traffic
        assert not session.attributed
        assert all(tb.dataplane.attribution_of(p) is None for p in session.packets)

    def test_capture_filter(self):
        tb = Testbed(KernelPathDataplane)
        proc = tb.spawn("app", "bob", core_id=1)
        session = tb.dataplane.start_capture(
            match=lambda p: p.five_tuple is not None and p.five_tuple.dport == 9000
        )
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        ep.send(10, dst=(PEER_IP, 9000))
        ep.send(10, dst=(PEER_IP, 9001))
        tb.run_all()
        assert len(session.packets) == 1


class TestArpVisibility:
    def test_kernel_path_sees_inbound_arp(self):
        tb = Testbed(KernelPathDataplane)
        tb.peer.send(make_arp_request(tb.peer.mac, tb.peer.ip, PEER_IP))
        tb.run_all()
        entries = tb.dataplane.arp_entries()
        assert len(entries) == 1
        assert entries[0].mac == tb.peer.mac

    def test_bypass_kernel_arp_cache_is_blind(self):
        """Apps speak their own ARP; the kernel cache never learns —
        the §2 debugging pathology."""
        tb = Testbed(BypassDataplane)
        proc = tb.spawn("flooder", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        from repro.dataplanes.testbed import HOST_MAC, HOST_IP

        def flood():
            for _ in range(5):
                yield ep.send_raw(make_arp_request(HOST_MAC, HOST_IP, PEER_IP))

        SimProcess(tb.sim, flood())
        tb.run_all()
        assert len(tb.peer.received) == 5  # the flood went out...
        assert tb.dataplane.arp_entries() == []  # ...and the kernel saw nothing

    def test_hypervisor_sees_arp_without_pids(self):
        tb = Testbed(HypervisorDataplane)
        proc = tb.spawn("flooder", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        from repro.dataplanes.testbed import HOST_MAC, HOST_IP

        ep.send_raw(make_arp_request(HOST_MAC, HOST_IP, PEER_IP))
        tb.run_all()
        entries = tb.dataplane.arp_entries()
        assert len(entries) == 1
        assert entries[0].source_pid is None  # global view, no process view


class TestRawInjection:
    def test_kernel_path_forbids_raw_frames(self):
        tb = Testbed(KernelPathDataplane)
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        from repro.dataplanes.testbed import HOST_MAC, HOST_IP

        with pytest.raises(UnsupportedOperation):
            ep.send_raw(make_arp_request(HOST_MAC, HOST_IP, PEER_IP))

    def test_sidecar_attributes_raw_frames(self):
        tb = Testbed(SidecarDataplane)
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        session = tb.dataplane.start_capture()
        ep.send(50, dst=(PEER_IP, 80))
        tb.run_all()
        assert tb.dataplane.attribution_of(session.packets[0])[2] == "app"


class TestDataMovement:
    def test_kernel_counts_virtual_moves(self):
        tb = Testbed(KernelPathDataplane)
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        ep.send(1_000, dst=(PEER_IP, 80))
        tb.run_all()
        moves = tb.dataplane.data_movements()
        assert moves["virtual"] >= 1
        assert moves["virtual_copied_bytes"] >= 1_000
        assert moves["physical"] == 0

    def test_sidecar_counts_physical_moves(self):
        tb = Testbed(SidecarDataplane)
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        ep.send(1_000, dst=(PEER_IP, 80))
        tb.run_all()
        moves = tb.dataplane.data_movements()
        assert moves["physical"] > 0
        assert moves["virtual"] == 0

    def test_bypass_moves_nothing_extra(self):
        tb = Testbed(BypassDataplane)
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        ep.send(1_000, dst=(PEER_IP, 80))
        tb.run_all()
        assert tb.dataplane.data_movements() == {
            "virtual": 0, "virtual_copied_bytes": 0, "physical": 0,
        }


class TestCrossHostIsolation:
    """Admin tools interpose on ONE host's dataplane: everything on host A
    — filter listings, socket tables, connection state — shows host A
    only. A rack does not grow a rack-wide /proc; host B's state is
    invisible by construction, not by filtering (§2: interposition scope
    is the machine boundary)."""

    def _pair(self):
        from repro.core import NormanOS
        from repro.dataplanes.multihost import TwoHostTestbed

        tb = TwoHostTestbed(KernelPathDataplane, NormanOS)
        tb.run_all()  # overlay loads on the Norman side
        return tb

    def test_iptables_rules_do_not_leak_across_hosts(self):
        from repro.tools import Iptables

        tb = self._pair()
        ipt_a = Iptables(tb.host_a.dataplane, tb.host_a.kernel)
        ipt_b = Iptables(tb.host_b.dataplane, tb.host_b.kernel)
        ipt_b("-A OUTPUT -p udp --dport 5432 -j DROP")
        # B sees its rule; A's table is untouched.
        assert "-j DROP" in ipt_b("-L OUTPUT")
        assert "-j" not in ipt_a("-L OUTPUT")
        # And A's traffic to the "dropped" port flows: B's rule interposes
        # on B's dataplane only.
        proc = tb.host_a.spawn("app", "bob", core_id=1)
        ep = tb.host_a.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        srv = tb.host_b.spawn("srv", "carol", core_id=1)
        ep_b = tb.host_b.dataplane.open_endpoint(srv, PROTO_UDP, 5432)
        tb.run_all()
        ep.send(100, dst=(tb.host_b.ip, 5432))
        tb.run_all()
        got = []
        ep_b.recv_burst(4, blocking=False).add_callback(
            lambda s: got.extend(s.value) if s.ok else None)
        tb.run_all()
        assert len(got) == 1

    def test_netstat_lists_only_local_sockets(self):
        from repro.tools import Netstat

        tb = self._pair()
        pa = tb.host_a.spawn("alpha", "bob", core_id=1)
        pb = tb.host_b.spawn("bravo", "carol", core_id=1)
        tb.host_a.dataplane.open_endpoint(pa, PROTO_UDP, 7001)
        tb.host_b.dataplane.open_endpoint(pb, PROTO_UDP, 7002)
        tb.run_all()
        out_a = Netstat(tb.host_a.kernel)()
        out_b = Netstat(tb.host_b.kernel)()
        assert "alpha" in out_a and "bravo" not in out_a
        assert ":7001" in out_a and ":7002" not in out_a
        assert ":7002" in out_b and ":7001" not in out_b

    def test_ss_shows_only_local_nic_state(self):
        from repro.tools import Ss

        tb = self._pair()
        pb = tb.host_b.spawn("bravo", "carol", core_id=1)
        tb.host_b.dataplane.open_endpoint(pb, PROTO_UDP, 7002)
        tb.run_all()
        out_a = Ss(tb.host_a.dataplane, tb.host_a.kernel)()
        out_b = Ss(tb.host_b.dataplane, tb.host_b.kernel)()
        assert ":7002" in out_b
        assert ":7002" not in out_a
        assert "bravo" not in out_a


class TestPortPartitionViolation:
    def test_bypass_lets_anyone_take_5432(self):
        """E5's core observation: without interposition the policy is
        unenforceable — Charlie's misconfigured app receives postgres
        traffic."""
        tb = Testbed(BypassDataplane)
        charlie_app = tb.spawn("mysql-misconfigured", "charlie", core_id=1)
        ep = tb.dataplane.open_endpoint(charlie_app, PROTO_UDP, 5432)  # no one stops this
        got = []

        def server():
            msg = yield ep.recv(blocking=True)
            got.append(msg)
            ep.close()

        SimProcess(tb.sim, server())
        tb.sim.after(1_000, tb.peer.send_udp, 555, 5432, 64)
        tb.run(until=1_000_000)
        assert len(got) == 1  # violation delivered

    def test_kernel_path_blocks_the_same_violation(self):
        tb = Testbed(KernelPathDataplane)
        bob = tb.user("bob")
        tb.user("charlie")
        tb.dataplane.install_filter_rule(
            NetfilterRule(verdict=ACCEPT, chain="INPUT", dport=5432,
                          uid_owner=bob.uid, cmd_owner="postgres")
        )
        tb.dataplane.install_filter_rule(
            NetfilterRule(verdict=DROP, chain="INPUT", dport=5432)
        )
        charlie_app = tb.spawn("mysql-misconfigured", "charlie", core_id=1)
        ep = tb.dataplane.open_endpoint(charlie_app, PROTO_UDP, 5432)
        tb.peer.send_udp(555, 5432, 64)
        tb.run_all()
        assert len(ep.sock.rx_queue) == 0  # dropped by owner policy
        assert tb.kernel.netstack.metrics.counter("rx_filtered").value == 1
