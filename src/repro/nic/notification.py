"""Shared notification queues (§4.3).

"The Norman dataplane ... allows connections to be configured so that the
NIC adds a notification to a shared notification queue when packets are
added to a queue ... A process's notification queue is accessible to both
the process and the kernel, and the Norman kernel control plane is
responsible for monitoring notifications sent to blocked threads."

The queue therefore has two consumers: the owning process (polling mode)
and the kernel control-plane monitor (blocking mode, via ``subscribe``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from ..errors import NicError
from ..sim import MetricSet

KIND_RX_READY = "rx_ready"
KIND_TX_DRAINED = "tx_drained"

_KINDS = (KIND_RX_READY, KIND_TX_DRAINED)


@dataclass(frozen=True)
class Notification:
    conn_id: int
    kind: str
    time_ns: int

    count: int = 1
    """How many packets this notification covers. Burst mode posts one
    coalesced notification per burst (NAPI/interrupt-coalescing style)
    instead of one per packet; per-packet mode always uses 1."""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise NicError(f"unknown notification kind: {self.kind!r}")
        if self.count < 1:
            raise NicError(f"notification must cover >= 1 packet: {self.count}")


class NotificationQueue:
    """One process's notification queue."""

    def __init__(self, owner_pid: int, capacity: int = 4_096, name: str = ""):
        if capacity < 1:
            raise NicError(f"capacity must be >= 1: {capacity}")
        self.owner_pid = owner_pid
        self.capacity = capacity
        self.name = name or f"notifq.pid{owner_pid}"
        self._entries: Deque[Notification] = deque()
        self._subscribers: List[Callable[[Notification], None]] = []
        #: Immutable snapshot iterated by :meth:`post` — rebuilt on
        #: (un)subscribe so the hot path never copies the list.
        self._subs: tuple = ()
        self.metrics = MetricSet(self.name)
        self.interrupts_enabled = False

    def post(self, notif: Notification) -> bool:
        """NIC-side: append a notification; fan out to subscribers.

        Returns False when the queue storage overflowed (the *entry* is
        lost; polling consumers must treat the queue as lossy and rescan).
        Subscribers fire regardless — they tap the post operation itself,
        the way an MSI-X interrupt fires even when the event ring is full —
        so the kernel monitor can never miss a wake-up.
        """
        stored = len(self._entries) < self.capacity
        if stored:
            self._entries.append(notif)
            self.metrics.counter("posted").inc()
        else:
            self.metrics.counter("overflows").inc()
        for sub in self._subs:
            sub(notif)
        return stored

    def subscribe(self, fn: Callable[[Notification], None]) -> Callable[[], None]:
        """Kernel-monitor side: observe every posted notification.
        Returns an unsubscribe callable."""
        self._subscribers.append(fn)
        self._subs = tuple(self._subscribers)

        def _unsubscribe() -> None:
            self._subscribers.remove(fn)
            self._subs = tuple(self._subscribers)

        return _unsubscribe

    def poll(self) -> Optional[Notification]:
        """Process side: consume the oldest notification, if any."""
        if not self._entries:
            return None
        self.metrics.counter("polled").inc()
        return self._entries.popleft()

    def drain(self) -> List[Notification]:
        """Consume everything pending."""
        out = list(self._entries)
        self._entries.clear()
        self.metrics.counter("polled").inc(len(out))
        return out

    @property
    def depth(self) -> int:
        return len(self._entries)

    def enable_interrupts(self, enabled: bool = True) -> None:
        """Control-plane hint: deliver via interrupt for low-activity queues
        (§4.3). The KOPI control plane uses this to choose wake cost."""
        self.interrupts_enabled = enabled
