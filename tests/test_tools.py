"""Admin tools over kernel and KOPI dataplanes."""

import pytest

from repro.core import NormanOS
from repro.dataplanes import BypassDataplane, KernelPathDataplane, Testbed
from repro.dataplanes.testbed import PEER_IP
from repro.errors import ToolError, UnsupportedOperation
from repro.net import PROTO_UDP, make_arp_request
from repro.tools import Arp, Ifconfig, Iptables, Netstat, Tc, Tcpdump, compile_filter

PLANES = [KernelPathDataplane, NormanOS]


@pytest.fixture(params=PLANES, ids=lambda c: c.name)
def tb(request):
    return Testbed(request.param)


class TestIptables:
    def test_add_list_flush(self, tb):
        ipt = Iptables(tb.dataplane, tb.kernel)
        tb.user("bob")
        out = ipt("-A OUTPUT -p udp --dport 5432 -m owner --uid-owner bob "
                  "--cmd-owner postgres -j ACCEPT")
        assert out.startswith("ok:")
        ipt("-A OUTPUT -p udp --dport 5432 -j DROP")
        listing = ipt("-L OUTPUT")
        assert "--uid-owner 1000" in listing
        assert listing.count("-j") == 2
        ipt("-F OUTPUT")
        assert ipt("-L OUTPUT").count("-j") == 0

    def test_rule_actually_enforces(self, tb):
        ipt = Iptables(tb.dataplane, tb.kernel)
        ipt("-A OUTPUT -p udp --dport 9000 -j DROP")
        tb.run_all()  # allow overlay loads on KOPI
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        tb.run_all()
        ep.send(100, dst=(PEER_IP, 9000))
        ep.send(100, dst=(PEER_IP, 9001))
        tb.run_all()
        assert [p.five_tuple.dport for p in tb.peer.received] == [9001]

    def test_verbose_counters(self, tb):
        ipt = Iptables(tb.dataplane, tb.kernel)
        ipt("-A OUTPUT -p udp --dport 9000 -j DROP")
        tb.run_all()
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        tb.run_all()
        ep.send(100, dst=(PEER_IP, 9000))
        tb.run_all()
        listing = ipt("-L OUTPUT -v")
        assert "pkts=1" in listing

    def test_insert_and_delete(self, tb):
        ipt = Iptables(tb.dataplane, tb.kernel)
        ipt("-A OUTPUT --dport 1 -j DROP")
        ipt("-I OUTPUT --dport 1 -j ACCEPT")  # inserted at head
        rules = tb.kernel.filters.rules("OUTPUT")
        assert rules[0].verdict == "ACCEPT"
        ipt("-D OUTPUT 1")
        assert tb.kernel.filters.rules("OUTPUT")[0].verdict == "DROP"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "-X OUTPUT",
            "-A NAT -j DROP",
            "-A OUTPUT -j REJECT",
            "-A OUTPUT --dport 1",
            "-A OUTPUT -p icmp -j DROP",
            "-A OUTPUT -m state -j DROP",
            "-D OUTPUT 99",
            "-A OUTPUT --dport",
        ],
    )
    def test_bad_commands(self, tb, bad):
        ipt = Iptables(tb.dataplane, tb.kernel)
        with pytest.raises(ToolError):
            ipt(bad)

    def test_bypass_refuses(self):
        tb = Testbed(BypassDataplane)
        ipt = Iptables(tb.dataplane, tb.kernel)
        with pytest.raises(UnsupportedOperation):
            ipt("-A OUTPUT --dport 9000 -j DROP")


class TestTc:
    def test_wfq_configures_scheduler(self, tb):
        tb.kernel.cgroups.create("/games")
        tb.kernel.cgroups.create("/work")
        tc = Tc(tb.dataplane, tb.kernel)
        out = tc("qdisc replace dev nic0 root wfq /games:1 /work:9")
        assert out.startswith("ok:")
        assert "/games:1" in tc("qdisc show dev nic0")

    def test_unknown_cgroup_rejected(self, tb):
        tc = Tc(tb.dataplane, tb.kernel)
        from repro.errors import KernelError

        with pytest.raises(KernelError):
            tc("qdisc replace dev nic0 root wfq /missing:1")

    @pytest.mark.parametrize("bad", ["", "qdisc add dev nic0 root codel",
                                     "qdisc replace dev nic0 root wfq",
                                     "qdisc replace dev nic0 root wfq /g"])
    def test_bad_commands(self, tb, bad):
        tb.kernel.cgroups.create("/g")
        tc = Tc(tb.dataplane, tb.kernel)
        with pytest.raises(ToolError):
            tc(bad)


class TestTcpdumpFilters:
    def pkt(self, dport=80):
        from repro.net import IPv4Address, MacAddress, make_udp

        return make_udp(MacAddress.from_index(1), MacAddress.from_index(2),
                        IPv4Address.parse("10.0.0.1"), IPv4Address.parse("10.0.0.2"),
                        1234, dport, 10)

    def test_expressions(self):
        assert compile_filter("")(self.pkt())
        assert compile_filter("udp")(self.pkt())
        assert not compile_filter("tcp")(self.pkt())
        assert compile_filter("port 80")(self.pkt(80))
        assert compile_filter("dst port 80")(self.pkt(80))
        assert not compile_filter("src port 80")(self.pkt(80))
        assert compile_filter("udp and dst port 80")(self.pkt(80))
        assert not compile_filter("udp and dst port 81")(self.pkt(80))
        assert compile_filter("host 10.0.0.2")(self.pkt())

    def test_arp_expression(self):
        from repro.net import IPv4Address, MacAddress

        arp = make_arp_request(MacAddress.from_index(1), IPv4Address.parse("10.0.0.1"),
                               IPv4Address.parse("10.0.0.2"))
        assert compile_filter("arp")(arp)
        assert not compile_filter("udp")(arp)

    def test_bad_expression(self):
        with pytest.raises(ToolError):
            compile_filter("frames with vibes")
        with pytest.raises(ToolError):
            compile_filter("port eighty")


class TestTcpdumpTool:
    def test_capture_and_format(self, tb):
        proc = tb.spawn("postgres", "bob", core_id=1)
        dump = Tcpdump(tb.dataplane)
        session = dump.start("udp and dst port 9000")
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        ep.send(100, dst=(PEER_IP, 9000))
        ep.send(100, dst=(PEER_IP, 9001))
        tb.run_all()
        text = dump.format(session)
        assert "1 packets captured" in text
        assert "comm=postgres" in text

    def test_save_pcap_kopi_only(self, tmp_path):
        tb = Testbed(NormanOS)
        proc = tb.spawn("app", "bob", core_id=1)
        dump = Tcpdump(tb.dataplane)
        session = dump.start("")
        tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000).send(10, dst=(PEER_IP, 1))
        tb.run_all()
        path = dump.save_pcap(session, str(tmp_path / "out.pcap"))
        assert path is not None
        from repro.net.pcap import read_pcap_summary

        count, _ = read_pcap_summary((tmp_path / "out.pcap").read_bytes())
        assert count == 1


class TestNetstatAndArp:
    def test_netstat_joins_process_table(self, tb):
        proc = tb.spawn("postgres", "bob", core_id=1)
        tb.dataplane.open_endpoint(proc, PROTO_UDP, 5432)
        ns = Netstat(tb.kernel)
        out = ns()
        assert "5432" in out
        assert "postgres" in out
        assert "bob" in out
        assert ns.rows() == 1

    def test_netstat_blind_under_bypass(self):
        tb = Testbed(BypassDataplane)
        proc = tb.spawn("postgres", "bob", core_id=1)
        tb.dataplane.open_endpoint(proc, PROTO_UDP, 5432)
        assert Netstat(tb.kernel).rows() == 0  # the §2 pathology

    def test_ifconfig_shows_counters(self, tb):
        proc = tb.spawn("app", "bob", core_id=1)
        tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000).send(10, dst=(PEER_IP, 1))
        tb.run_all()
        out = Ifconfig(tb.dataplane, tb.kernel)()
        assert "TX packets 1" in out

    def test_arp_tool(self):
        tb = Testbed(KernelPathDataplane)
        assert Arp(tb.dataplane)() == "arp: no entries"
        tb.peer.send(make_arp_request(tb.peer.mac, tb.peer.ip, PEER_IP))
        tb.run_all()
        out = Arp(tb.dataplane)()
        assert str(tb.peer.ip) in out
        assert Arp(tb.dataplane).count() == 1
