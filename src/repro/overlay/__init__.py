"""The FPGA overlay processor.

§4.4 of the paper proposes loading *programs* into a domain-specific overlay
instead of reprogramming FPGA hardware, so that queueing and filtering
policies change in microseconds rather than seconds. This package implements
that overlay for real: a register ISA specialized for packet policy
(:mod:`isa`), a text assembler (:mod:`assembler`), a static verifier that
guarantees termination by construction (:mod:`verifier`), the execution
engine with per-instruction cost (:mod:`machine`), and compilers from
kernel policy objects — netfilter rules, tc classifiers — to overlay
programs (:mod:`compiler`).
"""

from .assembler import assemble
from .compiler import compile_classifier, compile_filter_rules
from .isa import (
    FIELDS,
    Instr,
    OP_ACCEPT,
    OP_DROP,
    Program,
    VERDICT_ACCEPT,
    VERDICT_DROP,
)
from .machine import ExecResult, OverlayMachine
from .verifier import verify

__all__ = [
    "ExecResult",
    "FIELDS",
    "Instr",
    "OP_ACCEPT",
    "OP_DROP",
    "OverlayMachine",
    "Program",
    "VERDICT_ACCEPT",
    "VERDICT_DROP",
    "assemble",
    "compile_classifier",
    "compile_filter_rules",
    "verify",
]
