"""E12 — batching bench: the coalesced-event fast path pays for itself.

Beyond the simulated amortization (fewer ns of simulated CPU per packet),
burst mode must also make the *simulator* cheaper: one heap entry per burst
instead of one per packet means fewer events fired and less wall-clock per
simulated packet. This bench measures both and writes a JSON artifact with
the wall-clock/throughput numbers so CI runs leave a comparable record.
"""

import json
import time
from dataclasses import replace
from pathlib import Path

from repro.apps import BulkSender
from repro.config import DEFAULT_COSTS
from repro.dataplanes import BypassDataplane, KernelPathDataplane, Testbed
from repro.experiments.common import fmt_table
from repro.experiments.e12_batching import headline, run_e12

ARTIFACT = Path(__file__).parent / "artifacts" / "e12_batching.json"
COUNT = 2_048


def _run_point(plane_cls, batch, count=COUNT):
    costs = replace(DEFAULT_COSTS, batch_size=batch)
    tb = Testbed(plane_cls, costs=costs)
    app = BulkSender(tb, comm="bulk", user="bob", core_id=1,
                     payload_len=1_458, count=count, burst=batch)
    t0 = time.perf_counter()
    app.start()
    tb.run_all()
    wall_s = time.perf_counter() - t0
    return {
        "plane": plane_cls.name,
        "batch": batch,
        "packets": app.sent,
        "events_fired": tb.sim.events_fired,
        "sim_goodput_gbps": app.goodput_bps() / 1e9,
        "wall_s": wall_s,
        "wall_pkts_per_s": app.sent / wall_s if wall_s else 0.0,
    }


def test_e12_batching(once):
    rows = once(run_e12, count=320)
    from repro.experiments.e12_batching import COLUMNS

    print("\n" + fmt_table(rows, columns=COLUMNS))
    h = headline(rows)
    # Acceptance: ring-based planes amortize monotonically; the sidecar's
    # physical movement does not amortize.
    assert h["ring_planes_monotone"]
    assert h["kernel_amortization_x"] > 1.1
    assert h["bypass_amortization_x"] > 1.5
    assert h["sidecar_amortization_x"] < 1.05


def test_e12_wall_clock_artifact():
    points = []
    for plane_cls in (BypassDataplane, KernelPathDataplane):
        for batch in (1, 16, 32):
            points.append(_run_point(plane_cls, batch))

    by_key = {(p["plane"], p["batch"]): p for p in points}
    for plane in ("bypass", "kernel"):
        base, batched = by_key[(plane, 1)], by_key[(plane, 32)]
        # The coalesced-event fast path: strictly fewer simulator events.
        assert batched["events_fired"] < base["events_fired"], (
            f"{plane}: burst mode fired {batched['events_fired']} events, "
            f"per-packet fired {base['events_fired']}"
        )
        print(
            f"\n{plane}: batch=1 {base['events_fired']} events "
            f"({base['wall_s'] * 1e3:.1f} ms wall, "
            f"{base['wall_pkts_per_s']:,.0f} pkt/s) -> batch=32 "
            f"{batched['events_fired']} events "
            f"({batched['wall_s'] * 1e3:.1f} ms wall, "
            f"{batched['wall_pkts_per_s']:,.0f} pkt/s)"
        )

    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(json.dumps({"points": points}, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
