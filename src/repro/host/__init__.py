"""Simulated host hardware: cores, LLC with DDIO, DRAM, PCIe, coherence.

This is the substrate the paper's data-movement arguments run on. Each
component accounts costs in integer nanoseconds against the shared
:class:`~repro.config.CostModel`.
"""

from .cache import AnalyticDdioModel, WayPartitionedCache
from .coherence import CoherenceFabric
from .copies import CopyLedger, LayerLedger
from .cpu import Core, CpuSet
from .machine import Machine
from .memory import MemorySystem, PinnedRegion
from .pcie import DmaEngine
from .tenants import Tenant, TenantRegistry

__all__ = [
    "AnalyticDdioModel",
    "CoherenceFabric",
    "CopyLedger",
    "Core",
    "CpuSet",
    "DmaEngine",
    "LayerLedger",
    "Machine",
    "MemorySystem",
    "PinnedRegion",
    "Tenant",
    "TenantRegistry",
    "WayPartitionedCache",
]
