"""On-NIC packet sniffing (the tcpdump backend under KOPI).

Because the SmartNIC is on-path for *every* packet of *every* application,
a sniffer session sees the global view; because the control plane stamps
each packet's owner from the connection registry, the capture is
process-attributed — the combination §2 says debugging needs.
Captured packets can be serialized to a genuine pcap file.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..net.packet import Packet
from ..net.pcap import PcapWriter
from ..sim import MetricSet, Simulator
from ..dataplanes.base import CaptureSession, PacketFilter


class Sniffer:
    """Mirror stage in the KOPI pipeline."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._sessions: List[Tuple[Optional[PacketFilter], CaptureSession, PcapWriter]] = []
        self.metrics = MetricSet("sniffer")
        self.point = None  # Optional[InterpositionPoint], set at registration

    def _session_change(self) -> None:
        if self.point is not None:
            self.point.record_update()

    def start(self, match: Optional[PacketFilter] = None, name: str = "capture") -> CaptureSession:
        session = CaptureSession(name=name, attributed=True)
        writer = PcapWriter()
        session.pcap = writer
        entry = (match, session, writer)
        self._sessions.append(entry)
        self._session_change()

        def _detach() -> None:
            self._sessions.remove(entry)
            self._session_change()

        session._detach = _detach
        return session

    def mirror(self, pkt: Packet) -> None:
        """Called by the NIC pipeline for every packet (both directions)."""
        if not self._sessions:
            return
        mirrored = False
        for match, session, writer in self._sessions:
            if match is None or match(pkt):
                session.packets.append(pkt)
                writer.write(self.sim.now, pkt)
                self.metrics.counter("mirrored").inc()
                mirrored = True
        if self.point is not None:
            self.point.record_eval(hit=mirrored)

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)
