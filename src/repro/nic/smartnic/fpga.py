"""FPGA fabric: bitstreams and overlay slots.

Two reconfiguration granularities, per §4.4:

* :meth:`load_bitstream` rewrites the hardware — "seconds or longer", the
  dataplane is **offline** for the duration ("equivalent to upgrading the
  kernel itself");
* :meth:`load_overlay` loads a verified program into an existing overlay
  slot in microseconds, with the dataplane live throughout.

E10 measures exactly this asymmetry against a year of policy churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ...config import CostModel
from ...errors import NicError, VerifierError
from ...overlay.isa import Program
from ...overlay.machine import OverlayMachine
from ...overlay.verifier import verify
from ...sim import MetricSet, Signal, Simulator


@dataclass(frozen=True)
class Bitstream:
    """A full-fabric image: which overlay slots (and their capacities) it
    provides, and how much logic it consumes."""

    name: str
    overlay_slots: "tuple[tuple[str, int], ...]"  # (slot name, max instrs)
    logic_units: int = 100_000

    def slot_capacity(self, slot: str) -> Optional[int]:
        for name, cap in self.overlay_slots:
            if name == slot:
                return cap
        return None


class OverlaySlot:
    """One loadable program slot inside the current bitstream."""

    def __init__(self, name: str, max_instrs: int, costs: CostModel):
        self.name = name
        self.max_instrs = max_instrs
        self.costs = costs
        self.machine: Optional[OverlayMachine] = None
        self.loads = 0

    def load(self, program: Program) -> OverlayMachine:
        verify(program, max_instrs=self.max_instrs)
        self.machine = OverlayMachine(program, self.costs)
        self.loads += 1
        return self.machine


class FpgaFabric:
    """The reconfigurable fabric of one SmartNIC."""

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel,
        logic_capacity: int = 1_000_000,
        name: str = "fpga",
    ):
        self.sim = sim
        self.costs = costs
        self.logic_capacity = logic_capacity
        self.name = name
        self.metrics = MetricSet(name)
        self.current: Optional[Bitstream] = None
        self.slots: Dict[str, OverlaySlot] = {}
        self.offline = False
        self._offline_watchers: List[Callable[[bool], None]] = []

    def on_offline_change(self, fn: Callable[[bool], None]) -> None:
        """NIC models subscribe to start/stop dropping traffic."""
        self._offline_watchers.append(fn)

    def _set_offline(self, offline: bool) -> None:
        self.offline = offline
        for fn in self._offline_watchers:
            fn(offline)

    def factory_flash(self, bitstream: Bitstream) -> None:
        """Install the power-on image synchronously (the NIC ships flashed).

        Only valid before any traffic: later changes must go through
        :meth:`load_bitstream` and pay the full reconfiguration price.
        """
        if self.current is not None:
            raise NicError("factory_flash after boot; use load_bitstream")
        if bitstream.logic_units > self.logic_capacity:
            raise NicError(
                f"bitstream {bitstream.name!r} needs {bitstream.logic_units} "
                f"logic units; fabric has {self.logic_capacity}"
            )
        self.current = bitstream
        self.slots = {
            name: OverlaySlot(name, cap, self.costs)
            for name, cap in bitstream.overlay_slots
        }

    # --- slow path: full reprogram ----------------------------------------

    def load_bitstream(self, bitstream: Bitstream) -> Signal:
        """Replace the whole fabric. Takes ``bitstream_load_ns`` during
        which the dataplane is offline; all loaded overlay programs are
        lost (hardware was rewritten)."""
        if bitstream.logic_units > self.logic_capacity:
            raise NicError(
                f"bitstream {bitstream.name!r} needs {bitstream.logic_units} "
                f"logic units; fabric has {self.logic_capacity}"
            )
        if self.offline:
            raise NicError("reconfiguration already in progress")
        self._set_offline(True)
        self.metrics.counter("bitstream_loads").inc()
        done = Signal(f"{self.name}.bitstream.{bitstream.name}")

        def _finish() -> None:
            self.current = bitstream
            self.slots = {
                name: OverlaySlot(name, cap, self.costs)
                for name, cap in bitstream.overlay_slots
            }
            self._set_offline(False)
            done.succeed(bitstream.name)

        self.sim.after(self.costs.bitstream_load_ns, _finish)
        return done

    # --- fast path: overlay program load ----------------------------------------

    def load_overlay(self, slot_name: str, program: Program) -> Signal:
        """Load a verified program into a slot; microseconds, dataplane
        stays live. Fails fast on verification errors (nothing is loaded)."""
        if self.current is None:
            raise NicError("no bitstream loaded")
        if slot_name not in self.slots:
            raise NicError(
                f"bitstream {self.current.name!r} has no slot {slot_name!r} "
                f"(have {sorted(self.slots)})"
            )
        slot = self.slots[slot_name]
        # Verify synchronously so a bad program costs nothing.
        verify(program, max_instrs=slot.max_instrs)
        done = Signal(f"{self.name}.overlay.{slot_name}")
        self.metrics.counter("overlay_loads").inc()

        def _finish() -> None:
            try:
                machine = slot.load(program)
            except VerifierError as exc:  # pragma: no cover - verified above
                done.fail(exc)
                return
            done.succeed(machine)

        self.sim.after(self.costs.overlay_load_ns, _finish)
        return done

    def machine(self, slot_name: str) -> Optional[OverlayMachine]:
        slot = self.slots.get(slot_name)
        return slot.machine if slot else None
