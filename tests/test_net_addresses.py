"""MAC/IPv4 address types and the internet checksum."""

import pytest

from repro.errors import AddressError
from repro.net import BROADCAST_MAC, IPv4Address, MacAddress, internet_checksum


class TestMacAddress:
    def test_parse_and_format_roundtrip(self):
        mac = MacAddress.parse("02:00:00:00:00:2a")
        assert str(mac) == "02:00:00:00:00:2a"
        assert mac.value == 0x02_00_00_00_00_2A

    def test_from_index(self):
        mac = MacAddress.from_index(0x123456)
        assert str(mac) == "02:00:00:12:34:56"

    def test_broadcast_and_multicast_bits(self):
        assert BROADCAST_MAC.is_broadcast
        assert BROADCAST_MAC.is_multicast
        assert not MacAddress.parse("02:00:00:00:00:01").is_broadcast
        assert MacAddress.parse("01:00:5e:00:00:01").is_multicast

    def test_to_bytes(self):
        assert MacAddress.parse("aa:bb:cc:dd:ee:ff").to_bytes() == bytes.fromhex(
            "aabbccddeeff"
        )

    def test_equality_and_hash(self):
        a = MacAddress.parse("02:00:00:00:00:01")
        b = MacAddress(0x020000000001)
        assert a == b
        assert hash(a) == hash(b)
        assert a != "02:00:00:00:00:01"

    def test_immutable(self):
        mac = MacAddress(1)
        with pytest.raises(AttributeError):
            mac._value = 2  # type: ignore[misc]

    @pytest.mark.parametrize("bad", ["", "1:2:3", "gg:00:00:00:00:00", "1:2:3:4:5:256"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            MacAddress.parse(bad)

    def test_rejects_out_of_range_value(self):
        with pytest.raises(AddressError):
            MacAddress(1 << 48)


class TestIPv4Address:
    def test_parse_and_format_roundtrip(self):
        ip = IPv4Address.parse("192.168.1.200")
        assert str(ip) == "192.168.1.200"
        assert ip.to_bytes() == bytes([192, 168, 1, 200])

    def test_ordering(self):
        assert IPv4Address.parse("10.0.0.1") < IPv4Address.parse("10.0.0.2")

    def test_equality_and_hash(self):
        assert IPv4Address.parse("10.0.0.1") == IPv4Address(0x0A000001)
        assert hash(IPv4Address(7)) == hash(IPv4Address(7))

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            IPv4Address.parse(bad)


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_checksum_of_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_inserting_checksum_validates(self):
        data = bytearray(bytes.fromhex("45000073000040004011000 0c0a80001c0a800c7".replace(" ", "")))
        cksum = internet_checksum(bytes(data))
        data[10:12] = cksum.to_bytes(2, "big")
        assert internet_checksum(bytes(data)) == 0
