"""The kernel's process table."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import KernelError
from .process import PROC_EXITED, Process
from .users import User


class ProcessTable:
    """pid allocation and lookup; the authoritative source of the
    "process view"."""

    def __init__(self) -> None:
        self._procs: Dict[int, Process] = {}
        self._next_pid = 1

    def spawn(self, comm: str, user: User, core_id: int = 0) -> Process:
        proc = Process(pid=self._next_pid, comm=comm, user=user, core_id=core_id)
        self._next_pid += 1
        self._procs[proc.pid] = proc
        return proc

    def get(self, pid: int) -> Process:
        if pid not in self._procs:
            raise KernelError(f"no such pid: {pid}")
        return self._procs[pid]

    def exists(self, pid: int) -> bool:
        return pid in self._procs

    def exit(self, pid: int) -> None:
        self.get(pid).set_state(PROC_EXITED)

    def processes(self, include_exited: bool = False) -> List[Process]:
        procs = list(self._procs.values())
        if not include_exited:
            procs = [p for p in procs if p.alive]
        return procs

    def by_comm(self, comm: str) -> List[Process]:
        return [p for p in self.processes() if p.comm == comm]

    def by_uid(self, uid: int) -> List[Process]:
        return [p for p in self.processes() if p.uid == uid]

    def __len__(self) -> int:
        return len([p for p in self._procs.values() if p.alive])
