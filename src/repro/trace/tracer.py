"""The tracing spine: spans, per-packet contexts, and the ``charge`` chokepoint.

Every cost-charging site in the tree routes its nanoseconds through
:func:`charge` (per-packet, attributed to a :class:`TraceContext`) or
:meth:`Tracer.loose` (work that cannot be pinned to one packet: wakeups,
poll spins, app serve loops). Both return the cost unchanged, so call sites
compose with the existing ``work = a + b + c`` arithmetic — tracing observes
the schedule, it never perturbs it.

Two invariants make the data trustworthy:

* **Default-off is free.** With ``CostModel.trace`` off no context is ever
  created, ``charge(..., ctx=None)`` is a returns-its-argument no-op, and the
  seed event trace stays byte-identical.
* **No lost nanoseconds.** For every closed context, the span sum equals the
  end-to-end latency (``closed_ns - t0_ns``). Deterministic delays are
  charged where they are scheduled; variable waits (ring residency, qdisc
  backlog, a busy core) are closed out with :meth:`TraceContext.fill_gap`
  at the hand-off points where the elapsed time becomes known.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.metrics import Histogram
from .stages import STAGES


class Span:
    """One attributed slice of a packet's life: ``ns`` in ``stage``.

    ``cpu`` distinguishes nanoseconds that occupy a core (and therefore show
    up in ``Core.busy_ns``) from hardware/wire time that elapses without
    burning cycles — E16 compares the CPU subset against measured core busy
    deltas.
    """

    __slots__ = ("stage", "ns", "cpu", "label")

    def __init__(self, stage: str, ns: int, cpu: bool = True, label: str = ""):
        self.stage = stage
        self.ns = ns
        self.cpu = cpu
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "cpu" if self.cpu else "hw"
        tag = f" {self.label}" if self.label else ""
        return f"<Span {self.stage}{tag} {self.ns}ns {kind}>"


class TraceContext:
    """The span tree of one packet, from first charge to delivery."""

    __slots__ = ("trace_id", "plane", "t0_ns", "closed_ns", "spans")

    def __init__(self, trace_id: int, plane: str, t0_ns: int):
        self.trace_id = trace_id
        self.plane = plane
        self.t0_ns = t0_ns
        self.closed_ns: Optional[int] = None
        self.spans: List[Span] = []

    def add(self, stage: str, ns: int, cpu: bool = True, label: str = "") -> None:
        self.spans.append(Span(stage, ns, cpu, label))

    def span_sum(self) -> int:
        return sum(s.ns for s in self.spans)

    def cpu_ns(self) -> int:
        return sum(s.ns for s in self.spans if s.cpu)

    def by_stage(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.spans:
            out[s.stage] = out.get(s.stage, 0) + s.ns
        return out

    def fill_gap(self, stage: str, now_ns: int, cpu: bool = False,
                 label: str = "wait") -> int:
        """Charge whatever elapsed time the spans recorded so far do not
        cover, attributing it to ``stage``. Used at hand-off points (ring
        consume, descriptor fetch) where residency only becomes known when
        the next hop picks the packet up. Returns the gap charged."""
        gap = (now_ns - self.t0_ns) - self.span_sum()
        if gap > 0:
            self.add(stage, gap, cpu=cpu, label=label)
            return gap
        return 0

    @property
    def closed(self) -> bool:
        return self.closed_ns is not None

    def close(self, now_ns: int) -> None:
        if self.closed_ns is None:
            self.closed_ns = now_ns

    def latency_ns(self) -> int:
        if self.closed_ns is None:
            raise ValueError(f"trace #{self.trace_id} is still open")
        return self.closed_ns - self.t0_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"closed@{self.closed_ns}" if self.closed else "open"
        return (f"<TraceContext #{self.trace_id} {self.plane} "
                f"t0={self.t0_ns} {len(self.spans)} spans {state}>")


def charge(stage: str, cost_ns: int, ctx: Optional[TraceContext],
           cpu: bool = True, label: str = "") -> int:
    """The chokepoint: attribute ``cost_ns`` to ``stage`` on ``ctx`` and
    return it unchanged. With tracing off every ``ctx`` is ``None`` and this
    is a no-op, so charging sites can wrap their arithmetic unconditionally."""
    if ctx is not None and cost_ns > 0:
        ctx.add(stage, cost_ns, cpu=cpu, label=label)
    return cost_ns


class Tracer:
    """Per-machine span collector.

    Lives on :class:`~repro.host.machine.Machine` (like the flow fast path,
    it is wired whether or not it is enabled; disabled it creates nothing).
    The active dataplane stamps :attr:`plane` at construction so every
    context carries its plane tag for per-plane per-stage histograms.
    """

    def __init__(self, sim, enabled: bool = False, plane: str = "host"):
        self.sim = sim
        self.enabled = enabled
        self.plane = plane
        self.contexts: List[TraceContext] = []
        self._next_id = 1
        # (plane, stage) -> [total_ns, cpu_ns, ops] for work with no packet.
        self._loose: Dict[Tuple[str, str], List[int]] = {}

    # -- recording ---------------------------------------------------------

    def begin(self, pkt, plane: Optional[str] = None) -> Optional[TraceContext]:
        """Open a context for ``pkt`` (stamped onto ``pkt.meta.trace``) at
        ``sim.now``. Returns ``None`` when tracing is disabled. A packet that
        already carries a *closed* context (a TX trace arriving at the far
        host's NIC) gets a fresh one; the old context stays retained."""
        if not self.enabled:
            return None
        ctx = TraceContext(self._next_id, plane or self.plane, self.sim.now)
        self._next_id += 1
        self.contexts.append(ctx)
        pkt.meta.trace = ctx
        return ctx

    def loose(self, stage: str, ns: int, cpu: bool = True, label: str = "") -> int:
        """Attribute work that belongs to the plane but not to any single
        packet (wakeups after delivery, poll spins, app serve loops).
        Returns ``ns`` unchanged so call sites wrap their arithmetic."""
        if self.enabled and ns > 0:
            key = (self.plane, stage)
            bucket = self._loose.setdefault(key, [0, 0, 0])
            bucket[0] += ns
            if cpu:
                bucket[1] += ns
            bucket[2] += 1
        return ns

    def reset(self) -> None:
        """Drop every recorded context and loose bucket (the enabled flag
        and plane tag survive). Measurement drivers call this after their
        setup phase so the trace window matches the measurement window —
        resetting observes nothing and perturbs nothing."""
        self.contexts = []
        self._loose = {}

    # -- analysis ----------------------------------------------------------

    def closed_contexts(self, plane: Optional[str] = None) -> List[TraceContext]:
        return [c for c in self.contexts
                if c.closed and (plane is None or c.plane == plane)]

    def loose_totals(self, plane: Optional[str] = None) -> Dict[str, Dict[str, int]]:
        """``{stage: {"ns": total, "cpu_ns": cpu subset, "ops": n}}``."""
        out: Dict[str, Dict[str, int]] = {}
        for (pl, stage), (ns, cpu_ns, ops) in sorted(self._loose.items()):
            if plane is not None and pl != plane:
                continue
            slot = out.setdefault(stage, {"ns": 0, "cpu_ns": 0, "ops": 0})
            slot["ns"] += ns
            slot["cpu_ns"] += cpu_ns
            slot["ops"] += ops
        return out

    def stage_histograms(self, plane: Optional[str] = None) -> Dict[str, Histogram]:
        """Per-stage histograms of *per-packet* nanoseconds over every
        closed context (optionally one plane's)."""
        hists = {stage: Histogram(f"trace.{stage}") for stage in STAGES}
        for ctx in self.closed_contexts(plane):
            for stage, ns in ctx.by_stage().items():
                hists.setdefault(stage, Histogram(f"trace.{stage}")).observe(ns)
        return {stage: h for stage, h in hists.items() if h.count}

    def report(self, plane: Optional[str] = None) -> Dict[str, object]:
        """Everything E16 and the CLI need: per-stage per-packet summaries,
        loose totals, attributed CPU time, and mean end-to-end latency."""
        closed = self.closed_contexts(plane)
        loose = self.loose_totals(plane)
        ctx_cpu = sum(c.cpu_ns() for c in closed)
        loose_cpu = sum(v["cpu_ns"] for v in loose.values())
        lat = Histogram("trace.latency")
        lat.extend(float(c.latency_ns()) for c in closed)
        return {
            "plane": plane or self.plane,
            "packets": len(closed),
            "stages": {s: h.summary() for s, h in
                       self.stage_histograms(plane).items()},
            "loose": loose,
            "cpu_ns_total": ctx_cpu + loose_cpu,
            "cpu_ns_attributed": ctx_cpu,
            "latency": lat.summary(),
        }

    def merged_stage_histogram(self, stages: Iterable[str],
                               plane: Optional[str] = None) -> Histogram:
        """One histogram merging several stages' per-packet samples —
        exercises :meth:`Histogram.merge` for grouped reporting."""
        hists = self.stage_histograms(plane)
        merged = Histogram("trace.merged")
        for stage in stages:
            if stage in hists:
                merged.merge(hists[stage])
        return merged
