"""Norman connection state.

One :class:`NormanConnection` per application connection: the ring pair
(§4.3), the on-NIC SRAM block holding its steering/conntrack entry, and the
owner identity the kernel recorded at setup time — which is what lets the
NIC enforce owner policies it could never infer from packet bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..kernel.process import Process
from ..kernel.sockets import KernelSocket
from ..nic.rings import RingPair
from ..nic.smartnic.sram import SramBlock

CONN_MODE_PER_CONN = "per-connection"
CONN_MODE_SHARED = "shared-rings"


@dataclass
class NormanConnection:
    """Control-plane record for one connection."""

    conn_id: int
    proc: Process
    sock: KernelSocket
    rings: RingPair
    mode: str = CONN_MODE_PER_CONN
    sram: Optional[SramBlock] = None
    fallback: bool = False
    """True when NIC resources were exhausted and this connection runs on
    the software (kernel) path instead — §5's escape hatch, measured by E9."""

    notify_rx: bool = True
    closed: bool = False
    rx_packets: int = field(default=0)
    tx_packets: int = field(default=0)

    fluid_rx: list = field(default_factory=list)
    """Fast-forward receive credit: ``[n, payload_len, src_ip, sport]``
    chunks appended by fluid epoch delivery (no per-packet ring entries
    exist for absorbed packets). The library consumes these after the ring
    drains; their stage costs were already charged at epoch flush."""

    rate_bps: Optional[int] = None
    """NIC-enforced pacing rate for this connection's TX ring drain; None =
    unpaced. Set by the on-NIC congestion manager (§4.2 lists congestion
    control among the dataplane's interposition logic)."""

    @property
    def owner(self) -> "tuple[int, int, str]":
        return (self.proc.pid, self.proc.uid, self.proc.comm)

    @property
    def proto(self) -> int:
        return self.sock.proto

    @property
    def port(self) -> int:
        return self.sock.port

    def __repr__(self) -> str:
        flag = " fallback" if self.fallback else ""
        return (
            f"<NormanConnection #{self.conn_id} pid={self.proc.pid} "
            f"port={self.port}{flag}>"
        )
