"""E4 — §2 Debugging: tracing the ARP flood to its process.

A host runs ``n_apps`` look-alike applications; one (seeded position) has
the broken ARP implementation. We count *operator actions* until the buggy
process is identified under each approach:

* **bypass** — no global view: inspect applications one by one (the paper:
  "tedious and scales poorly as the number of applications grows");
* **hypervisor / network** — a capture shows the flood exists (1 action)
  but cannot name the process, so per-app inspection still follows;
* **KOPI** — one attributed tcpdump names the pid/comm directly.

The kernel path is reported for completeness: its applications cannot emit
raw ARP at all, so the flood cannot happen (prevention, not diagnosis).
"""

from __future__ import annotations

from typing import List

from ..core import NormanOS
from ..dataplanes import BypassDataplane, HypervisorDataplane, KernelPathDataplane, Testbed
from ..sim.rand import make_rng
from ..apps import ArpFlooder, BulkSender
from ..tools import Tcpdump
from .common import Row, fmt_table

DEFAULT_APPS = (4, 16, 64)


def _populate(tb: Testbed, n_apps: int, seed: int) -> int:
    """Spawn n_apps identical-looking apps, one of which floods; returns the
    flooder's 1-based position in inspection order."""
    rng = make_rng(seed, "e4")
    flood_pos = rng.randrange(n_apps) + 1
    for i in range(1, n_apps + 1):
        core = 1 + (i % max(1, len(tb.machine.cpus) - 1))
        if i == flood_pos:
            ArpFlooder(tb, user="bob", count=30, core_id=core, comm=f"svc{i}").start()
        else:
            BulkSender(tb, comm=f"svc{i}", user="bob", core_id=core,
                       payload_len=256, count=5).start()
    return flood_pos


def run_e4(n_apps_sweep: "tuple[int, ...]" = DEFAULT_APPS, seed: int = 1) -> List[Row]:
    rows: List[Row] = []
    for n_apps in n_apps_sweep:
        # --- bypass: inspect each app until the flooder is found ----------
        tb = Testbed(BypassDataplane)
        pos = _populate(tb, n_apps, seed)
        tb.run_all()
        rows.append({
            "plane": "bypass", "n_apps": n_apps,
            "operator_actions": pos,  # one inspection per app, in order
            "identified": True, "method": "inspect each app",
        })

        # --- hypervisor: global capture, still no attribution ---------------
        tb = Testbed(HypervisorDataplane)
        dump = Tcpdump(tb.dataplane)
        session = dump.start("arp")
        pos = _populate(tb, n_apps, seed)
        tb.run_all()
        saw_flood = len(session.packets) > 0
        attributed = any(tb.dataplane.attribution_of(p) for p in session.packets)
        rows.append({
            "plane": "hypervisor", "n_apps": n_apps,
            "operator_actions": (1 + pos) if saw_flood and not attributed else 1,
            "identified": True, "method": "capture (unattributed) + inspect apps",
        })

        # --- KOPI: one attributed tcpdump --------------------------------------
        tb = Testbed(NormanOS)
        dump = Tcpdump(tb.dataplane)
        session = dump.start("arp")
        _populate(tb, n_apps, seed)
        tb.run_all()
        owners = {tb.dataplane.attribution_of(p) for p in session.packets if p.is_arp}
        rows.append({
            "plane": "kopi", "n_apps": n_apps,
            "operator_actions": 1,
            "identified": len(owners) == 1 and None not in owners,
            "method": "attributed tcpdump",
        })

        # --- kernel path: raw ARP impossible ---------------------------------------
        tb = Testbed(KernelPathDataplane)
        flooder = ArpFlooder(tb, user="bob", count=30, core_id=1).start()
        tb.run_all()
        rows.append({
            "plane": "kernel", "n_apps": n_apps,
            "operator_actions": 0,
            "identified": flooder.refused,  # the flood cannot occur
            "method": "flood prevented (kernel owns ARP)",
        })
    return rows


def capture_trace_join(n_apps: int = 4, seed: int = 1) -> Row:
    """Tracing joins the capture to the latency anatomy: with
    ``costs.trace`` on, every packet a sniffer session records carries its
    ``trace_id``, and each id resolves to an attributed
    :class:`~repro.trace.TraceContext` in the machine's tracer. An operator
    can go from a tcpdump line to the packet's full stage decomposition —
    attribution (who) and anatomy (where the time went) share one key."""
    from dataclasses import replace

    from ..config import DEFAULT_COSTS

    tb = Testbed(NormanOS, costs=replace(DEFAULT_COSTS, trace=True))
    dump = Tcpdump(tb.dataplane)
    session = dump.start()
    _populate(tb, n_apps, seed)
    tb.run_all()
    by_id = {c.trace_id: c for c in tb.machine.tracer.contexts}
    joined = []
    for pkt in session.packets:
        ctx = pkt.meta.trace
        if ctx is None:
            continue
        joined.append({
            "trace_id": ctx.trace_id,
            "resolved": by_id.get(ctx.trace_id) is ctx,
            "spans": len(ctx.spans),
            "owner": tb.dataplane.attribution_of(pkt),
        })
    return {"captured": len(session.packets), "joined": joined}


def headline(rows: List[Row]) -> dict:
    biggest = max(r["n_apps"] for r in rows)
    at = {r["plane"]: r for r in rows if r["n_apps"] == biggest}
    return {
        "n_apps": biggest,
        "bypass_actions": at["bypass"]["operator_actions"],
        "kopi_actions": at["kopi"]["operator_actions"],
    }


def main() -> str:
    rows = run_e4()
    h = headline(rows)
    return "\n".join([
        fmt_table(rows),
        "",
        f"headline: at {h['n_apps']} apps, identifying the flooder takes "
        f"{h['bypass_actions']} actions under bypass vs {h['kopi_actions']} under KOPI",
    ])


if __name__ == "__main__":
    print(main())
