"""Calibrated cost model for the simulated host.

Every latency/size/rate constant used anywhere in the simulator lives here,
in one frozen dataclass, so that experiments can state exactly which knobs
they sweep and ablations can build modified copies via
:meth:`CostModel.replace`.

The defaults are calibrated to the literature the paper cites rather than to
any particular machine: syscall and copy costs from FlexSC/TAS-era
measurements, kernel per-packet costs consistent with ~1–2 Mpps/core Linux
forwarding, bypass per-packet costs consistent with DPDK-class 10s of
Mpps/core, DDIO sizing from Intel's documented 2-of-11-way LLC allocation,
and FPGA reconfiguration times from the paper's own "seconds or longer" for
full bitstreams versus microseconds for overlay program loads.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict

from . import units
from .errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """All tunable constants of the simulated host, NIC, and network.

    Times are integer nanoseconds, sizes bytes, rates bits/second, unless the
    field name says otherwise. ``*_ns_per_byte`` fields are floats; derived
    costs are rounded to whole nanoseconds at the point of use.
    """

    # --- CPU / OS ----------------------------------------------------------
    syscall_ns: int = 500
    """One user->kernel->user crossing (entry + exit, no work)."""

    context_switch_ns: int = 2_000
    """Direct cost of switching a core between two threads."""

    interrupt_ns: int = 3_000
    """Interrupt delivery + handler entry, used for blocking wakeups."""

    wakeup_schedule_ns: int = 1_500
    """Scheduler cost to move a woken thread onto a core."""

    copy_ns_per_byte: float = 0.06
    """Software memcpy, ~16 GB/s per core (user<->kernel copies)."""

    poll_iteration_ns: int = 80
    """One spin of a userspace poll loop that finds nothing."""

    # --- kernel network stack ----------------------------------------------
    kernel_rx_pkt_ns: int = 1_600
    """Per-packet kernel RX protocol processing (skb, IP/TCP demux)."""

    kernel_tx_pkt_ns: int = 1_400
    """Per-packet kernel TX protocol processing (skb alloc, headers, route)."""

    netfilter_rule_ns: int = 25
    """Cost of evaluating one netfilter rule in software."""

    qdisc_enqueue_ns: int = 120
    """Software qdisc enqueue+dequeue bookkeeping per packet."""

    socket_demux_ns: int = 150
    """Kernel socket table lookup per packet."""

    # --- userspace dataplane (bypass / Norman library) ----------------------
    bypass_rx_pkt_ns: int = 60
    """Per-packet userspace RX cost on a bypass ring (descriptor + header)."""

    bypass_tx_pkt_ns: int = 55
    """Per-packet userspace TX cost on a bypass ring."""

    app_pkt_work_ns: int = 100
    """Application-level work per packet (parse/serve), common to all paths."""

    # --- batching (burst-mode dataplane) ------------------------------------
    batch_size: int = 1
    """Packets moved per burst on every layer that supports bursts: ring
    doorbells, NIC TX drains, NAPI-style RX delivery, sendmmsg/recvmmsg.
    1 reproduces strict per-packet processing (the seed behaviour)."""

    dma_setup_ns: int = 40
    """Marginal cost per extra descriptor inside one batched DMA transaction
    (TLP framing, descriptor walk). Far below the full round-trip
    :attr:`pcie_dma_latency_ns` a lone descriptor pays — that gap is
    precisely what a burst fetch amortizes. Charged only on the burst
    (n > 1) paths; n == 1 stays the classic per-transaction latency."""

    interrupt_coalesce_ns: int = 8_000
    """NIC interrupt-coalescing window: in burst mode (batch_size > 1) RX
    notifications/interrupts are edge-triggered per burst rather than
    level-triggered per packet, bounding wakeups to one per window."""

    sendmmsg_per_msg_ns: int = 40
    """Marginal in-kernel bookkeeping per extra message of a batched
    sendmmsg/recvmmsg call (iovec walk, cmsg checks) — the part of syscall
    dispatch that does *not* amortize."""

    # --- zero-copy datapath (copy elision, experiment E13) -------------------
    tx_zerocopy: bool = False
    """MSG_ZEROCOPY-style kernel TX: pin the user pages and let the NIC DMA
    from them instead of copying the payload into kernel buffers. Each send
    pays :attr:`zc_tx_pin_ns` + :attr:`zc_tx_completion_ns` instead of the
    per-byte copy, so it only wins above the break-even message size.
    Off (the default) reproduces the seed byte-identically."""

    rx_zerocopy: bool = False
    """Registered-buffer (io_uring-style) kernel RX: payloads land in
    pre-registered user buffers the stack can address directly, so recv
    pays :attr:`zc_rx_fixed_ns` instead of the kernel->user per-byte copy.
    Off (the default) reproduces the seed byte-identically."""

    zc_tx_pin_ns: int = 450
    """Per-send cost of pinning user pages and building the scatter-gather
    descriptor for a zero-copy transmit (get_user_pages + skb frag setup)."""

    zc_tx_completion_ns: int = 400
    """Delivering the MSG_ZEROCOPY completion notification that tells the
    sender its buffer may be reused (error-queue entry + wakeup share)."""

    zc_rx_fixed_ns: int = 350
    """Per-recv fixed cost of the registered-buffer RX path: buffer-table
    lookup and handing the application a reference instead of bytes."""

    # --- flow fast path (megaflow-style verdict cache, experiment E15) -------
    flow_fastpath: bool = False
    """Cache the composed verdict of a full slow-path walk (netfilter,
    qdisc class, steering, overlay filter, conntrack) per five-tuple, as
    OVS megaflows and the Linux flowtable offload do: the first packet of
    a flow walks every interposition point, later packets hit one lookup.
    Any :class:`~repro.interpose.PolicyEngine` commit invalidates, so hits
    are always policy-correct. Off (the default) reproduces the seed
    byte-identically."""

    flowtable_hit_ns: int = 90
    """Modeled cost of one flow-table hit: a single hash lookup replacing
    the per-rule walk (~ exact-match EMC/flowtable lookup, a few cache
    references)."""

    flow_fastpath_entries: int = 1_024
    """Flow-table capacity (LRU). Models SRAM/flowtable pressure: beyond
    this many concurrent flows the cache thrashes and traffic falls back
    to the slow path — the same >1024-connection collapse §5 reports for
    DDIO working sets."""

    # --- hybrid fidelity (flow-level fast-forward, experiment E21) ----------
    fast_forward: bool = False
    """Fluid-approximate steady-state flows: once a flow has hit the verdict
    cache :attr:`ff_promote_after` packets in a row, later packets are
    absorbed into bulk ``FlowEpoch`` charges (N × the cached per-packet cost,
    per stage) instead of N per-packet events. The flow demotes back to
    packet-exact simulation at every fidelity boundary — policy commit,
    fastpath miss/invalidation/eviction, conntrack expiry, qdisc backlog
    threshold, DDIO/SRAM pressure crossing, packet-shape change (see
    ``docs/hybrid_fidelity.md``). Requires :attr:`flow_fastpath`. Off (the
    default) reproduces the seed byte-identically."""

    ff_promote_after: int = 8
    """Consecutive verdict-cache hits before a flow may go fluid."""

    ff_epoch_packets: int = 4_096
    """Absorbed packets that force an epoch flush (bulk charge)."""

    ff_horizon_ns: int = 1_000_000
    """Maximum simulated time an absorbed packet may wait unflushed: a
    pending epoch is charged at this horizon even if it never fills."""

    ff_qdisc_backlog: int = 256
    """Qdisc backlog (packets) at which queueing becomes load-dependent and
    every fluid flow is demoted (the ``qdisc_pressure`` boundary)."""

    ff_tolerance: float = 0.02
    """Pinned relative tolerance for E21's fidelity contract: fast-forwarded
    latency/attribution totals must match packet-level runs within this."""

    ff_group: bool = True
    """Coalesce promoted flows sharing (plane, chain-version-vector, profile
    shape) into one :class:`FlowGroup` per shape: a single epoch event and a
    single horizon timer charge N_flows × N_pkts, so the epoch machinery
    costs O(groups) events instead of O(flows). Off reproduces PR6's
    per-flow epoch charging (the E22 comparison baseline). Only meaningful
    with :attr:`fast_forward`."""

    ff_tx: bool = True
    """Fast-forward TX-side schedules too: a steady single-packet sender
    whose packets hit the TX verdict cache absorbs its app-timer → syscall
    → doorbell chain into fluid epochs instead of firing per-packet events,
    demoting at the same boundaries. Only meaningful with
    :attr:`fast_forward`."""

    ff_cross_machine: bool = False
    """Fast-forward across the switch hop (experiment E23): a steady flow
    from host A through the L2 switch to host B is absorbed end-to-end in
    one group-keyed fluid epoch — the sender's TX chain, the switch-hop
    forward, and the receiver's RX chain — instead of demoting at the
    wire. Promotion requires *both* stacks' verdict caches steady plus a
    learned, rule-free switch path; either side's demotion boundary (and
    any switch MAC-table change, flood, or rule install) demotes the whole
    end-to-end flow before the boundary's effect is simulated (see
    ``docs/hybrid_fidelity.md``). Requires :attr:`fast_forward`. Off (the
    default) keeps cross-host flows demoting at the wire, byte-identical
    to the per-host engine."""

    # --- cluster scale-out (rack + in-switch L4 balancer, experiment E18) ---
    cluster_lb: bool = False
    """Grow the L2 switch an in-network L4 load-balancer stage (experiment
    E18): frames addressed to a VIP's virtual MAC are steered to one of N
    backend machines by a consistent-hash ring over the five-tuple, with
    per-flow exact-match overrides. Steering state is owned by a
    :class:`~repro.interpose.PolicyEngine` on the switch's control plane
    and every change — VIP install, ring rebuild, per-flow re-steer — is a
    versioned atomic policy commit, so half-installed rules are never
    evaluated. Off (the default) builds no balancer and keeps the switch
    byte-identical to the seed forwarding path."""

    flow_migration: bool = False
    """Allow live migration of established flows between backends
    (experiment E18): drain the source's fluid epoch, serialize its
    conntrack entry + flow-fastpath verdict, replay them on the target
    machine stamped with the *target's* policy epoch, then atomically
    commit the per-flow re-steering rule via the balancer's interposition
    point. Loss-free and counter-conserving by construction — in-flight
    packets finish on the source under the old rule. Requires
    :attr:`cluster_lb`."""

    lb_vnodes: int = 32
    """Virtual nodes per backend on the balancer's consistent-hash ring
    (more vnodes → smoother VIP load spread and smaller re-steered key
    ranges when backends join/leave)."""

    lb_migration_drain_ns: int = 4_000
    """Drain window a migration waits after demoting the source flow, so
    packets already in flight toward the source (wire + switch hop) are
    served there before the state snapshot is taken. Must exceed one
    link round trip; the default covers the default
    :attr:`link_propagation_ns` several times over."""

    # --- multi-tenancy (tenant-aware dataplane, experiment E17) -------------
    tenants: bool = False
    """Resolve every resource touch to a first-class :class:`Tenant`
    (uid/cgroup-scoped, registered per machine): kernel syscall/socket/
    qdisc paths, fastpath installs, conntrack entries, SRAM blocks and
    NIC pipeline/DMA charges all carry the owning tenant, and per-tenant
    hit/miss/evicted/bytes counters move. Pure attribution — no schedule
    or quota changes. Off (the default) reproduces the seed
    byte-identically."""

    tenant_isolation: bool = False
    """Enforce tenant isolation on top of attribution: per-tenant
    flowtable and SRAM quotas (evict-within-tenant before evict-across),
    a per-tenant egress scheduler (:attr:`tenant_sched`) replacing the
    KOPI FIFO drain, and weighted fair arbitration of SmartNIC pipeline
    passes and DMA bytes. Fast-forward promotion consults quota headroom
    and fluid groups never span tenants. Requires :attr:`tenants`."""

    tenant_sched: str = "drr"
    """Per-tenant egress scheduler flavour: ``"drr"`` (deficit round
    robin over byte quanta) or ``"wfq"`` (same DRR mechanism, weights
    read as rate shares — the repo's WFQ realization, as in tc)."""

    tenant_quantum_bytes: int = 1_514
    """DRR byte quantum per round for weight-1 tenants (one MTU frame):
    bounds how long a victim waits behind any hog to ~1 frame per active
    tenant per round."""

    tenant_default_weight: int = 1
    """Scheduler weight for the built-in ``system`` tenant and for
    tenants registered without an explicit weight."""

    # --- latency anatomy (attributed tracing spine, experiment E16) ---------
    trace: bool = False
    """Record an attributed span per charged nanosecond (see repro.trace):
    every charging site routes through the ``charge()`` chokepoint, and with
    this flag on each packet carries a :class:`~repro.trace.TraceContext`
    whose spans tile its end-to-end latency exactly ("no lost nanoseconds").
    Tracing observes the schedule, it never perturbs it — with one audited
    exception, the sidecar wake-path drain fix described in
    ``docs/tracing.md``. Off (the default) reproduces the seed
    byte-identically."""

    # --- memory hierarchy ---------------------------------------------------
    llc_size_bytes: int = 33 * units.MB
    llc_ways: int = 11
    cache_line_bytes: int = 64
    ddio_ways: int = 2
    """Ways of the LLC that inbound DMA may allocate into (Intel DDIO)."""

    llc_hit_ns: int = 16
    dram_ns: int = 90
    coherence_line_ns: int = 60
    """Transferring one modified line between cores (physical movement)."""

    # --- PCIe / NIC ---------------------------------------------------------
    pcie_dma_latency_ns: int = 800
    """One DMA transaction NIC<->host memory, latency component."""

    pcie_bandwidth_bps: int = 120 * units.GBPS
    """Usable PCIe bandwidth (x16 Gen4-ish after overheads)."""

    mmio_write_ns: int = 100
    """CPU-visible cost of a posted MMIO write (doorbell)."""

    mmio_read_ns: int = 800
    """Non-posted MMIO read round trip."""

    nic_pipeline_ns: int = 350
    """Fixed latency of the conventional NIC's internal pipeline."""

    nic_line_rate_bps: int = 100 * units.GBPS

    rx_ring_entries: int = 256
    tx_ring_entries: int = 256
    ring_desc_bytes: int = 16
    rx_buf_bytes: int = 2_048

    conn_hot_lines: int = 96
    """Cache lines of ring+buffer state a busy connection keeps hot (~6 KiB).

    Chosen so that, with the default 2-of-11-way DDIO allocation of a 33 MiB
    LLC (= 6 MiB), the active working set outgrows DDIO near 1024 concurrent
    connections — the cliff §5 of the paper reports.
    """

    # --- SmartNIC ------------------------------------------------------------
    smartnic_sram_bytes: int = 16 * units.MB
    """On-NIC memory for rules, connection state, and queues."""

    smartnic_stage_ns: int = 45
    """Latency of one SmartNIC pipeline stage (filter, conntrack, ...)."""

    overlay_instr_ns: int = 2
    """Per-instruction latency of the overlay processor (pipelined FPGA)."""

    overlay_max_instrs: int = 4_096
    """Program capacity of one overlay slot."""

    conn_state_bytes: int = 320
    """On-NIC per-connection state (steering entry, seq/ack, counters)."""

    filter_entry_bytes: int = 64
    """On-NIC bytes per compiled filter rule."""

    # --- reconfiguration (experiment E10) ------------------------------------
    bitstream_load_ns: int = 2 * units.SEC
    """Full FPGA reprogram — 'seconds or longer' per the paper."""

    overlay_load_ns: int = 50 * units.US
    """Loading a new program into an existing overlay."""

    table_update_ns: int = 2 * units.US
    """MMIO-driven table entry insert/remove on the NIC."""

    kernel_update_ns: int = 10 * units.US
    """Updating a software policy inside the kernel (e.g. iptables insert)."""

    # --- links ----------------------------------------------------------------
    link_propagation_ns: int = 500
    """One-way propagation on the host's access link."""

    def __post_init__(self) -> None:
        for name, value in dataclasses.asdict(self).items():
            if isinstance(value, (int, float)) and value < 0:
                raise ConfigError(f"CostModel.{name} must be >= 0, got {value}")
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.flow_fastpath_entries < 1:
            raise ConfigError(
                f"flow_fastpath_entries must be >= 1, got {self.flow_fastpath_entries}"
            )
        if self.fast_forward and not self.flow_fastpath:
            raise ConfigError(
                "fast_forward requires flow_fastpath: fluid epochs replay "
                "cached verdicts, so there must be a verdict cache"
            )
        if self.ff_cross_machine and not self.fast_forward:
            raise ConfigError(
                "ff_cross_machine requires fast_forward: the end-to-end "
                "epoch binds two per-machine controllers, so both must exist"
            )
        if self.flow_migration and not self.cluster_lb:
            raise ConfigError(
                "flow_migration requires cluster_lb: re-steering a migrated "
                "flow is a balancer policy commit, so the balancer must exist"
            )
        if self.lb_vnodes < 1:
            raise ConfigError(f"lb_vnodes must be >= 1, got {self.lb_vnodes}")
        for knob in ("ff_promote_after", "ff_epoch_packets", "ff_horizon_ns",
                     "ff_qdisc_backlog"):
            if getattr(self, knob) < 1:
                raise ConfigError(
                    f"{knob} must be >= 1, got {getattr(self, knob)}"
                )
        if not 0 < self.ff_tolerance < 1:
            raise ConfigError(
                f"ff_tolerance must be in (0, 1), got {self.ff_tolerance}"
            )
        if self.tenant_isolation and not self.tenants:
            raise ConfigError(
                "tenant_isolation requires tenants: quotas and the "
                "per-tenant scheduler need resolved tenant identity"
            )
        if self.tenant_sched not in ("drr", "wfq"):
            raise ConfigError(
                f"tenant_sched must be 'drr' or 'wfq', got {self.tenant_sched!r}"
            )
        if self.tenant_quantum_bytes < 1:
            raise ConfigError(
                f"tenant_quantum_bytes must be >= 1, got {self.tenant_quantum_bytes}"
            )
        if self.tenant_default_weight < 1:
            raise ConfigError(
                f"tenant_default_weight must be >= 1, got {self.tenant_default_weight}"
            )
        if self.ddio_ways > self.llc_ways:
            raise ConfigError(
                f"ddio_ways ({self.ddio_ways}) cannot exceed llc_ways ({self.llc_ways})"
            )
        if self.llc_size_bytes % (self.llc_ways * self.cache_line_bytes) != 0:
            raise ConfigError("LLC size must be divisible by ways * line size")

    # --- derived quantities ---------------------------------------------------

    @property
    def llc_sets(self) -> int:
        """Number of sets in the modeled LLC."""
        return self.llc_size_bytes // (self.llc_ways * self.cache_line_bytes)

    @property
    def ddio_capacity_bytes(self) -> int:
        """Bytes of LLC that inbound DMA can occupy."""
        return self.llc_sets * self.ddio_ways * self.cache_line_bytes

    @property
    def conn_footprint_bytes(self) -> int:
        """Hot bytes per busy connection."""
        return self.conn_hot_lines * self.cache_line_bytes

    def copy_ns(self, nbytes: int) -> int:
        """Software copy cost for ``nbytes``, in whole ns."""
        if nbytes <= 0:
            return 0
        return max(1, round(nbytes * self.copy_ns_per_byte))

    # --- zero-copy cost components -------------------------------------------

    def zc_tx_ns(self, nbytes: int) -> int:
        """Fixed cost of one zero-copy transmit (pin + completion), charged
        in place of ``copy_ns(nbytes)`` when :attr:`tx_zerocopy` is on.
        Zero-length sends pin nothing and cost nothing extra."""
        if nbytes <= 0:
            return 0
        return self.zc_tx_pin_ns + self.zc_tx_completion_ns

    def zc_rx_ns(self, nbytes: int) -> int:
        """Fixed cost of one registered-buffer receive, charged in place of
        ``copy_ns(nbytes)`` when :attr:`rx_zerocopy` is on."""
        if nbytes <= 0:
            return 0
        return self.zc_rx_fixed_ns

    @property
    def zc_tx_break_even_bytes(self) -> int:
        """Smallest payload for which a zero-copy TX is no slower than the
        copy it elides: ``copy_ns(n) >= zc_tx_pin_ns + zc_tx_completion_ns``.
        With the defaults (0.06 ns/B vs 850 ns fixed) this is ~14.2 KB —
        why MSG_ZEROCOPY only pays off for large messages."""
        if self.copy_ns_per_byte <= 0:
            return 0
        fixed = self.zc_tx_pin_ns + self.zc_tx_completion_ns
        n = int(fixed / self.copy_ns_per_byte)
        while self.copy_ns(n) < fixed:
            n += 1
        return n

    # --- batch-aware cost components -----------------------------------------

    def dma_burst_ns(self, n: int) -> int:
        """Latency of one DMA transaction carrying ``n`` descriptors.

        A burst pays the transaction latency once plus a small per-extra-
        descriptor setup share; ``n == 1`` is exactly the classic per-packet
        :attr:`pcie_dma_latency_ns`, so batch_size=1 runs are unchanged.
        """
        if n <= 1:
            return self.pcie_dma_latency_ns
        return self.pcie_dma_latency_ns + (n - 1) * self.dma_setup_ns

    def syscall_burst_ns(self, n: int) -> int:
        """Entry/exit cost of one batched syscall moving ``n`` messages
        (``sendmmsg``/``recvmmsg``): one crossing plus per-extra-message
        dispatch bookkeeping. ``n == 1`` equals :attr:`syscall_ns`."""
        if n <= 1:
            return self.syscall_ns
        return self.syscall_ns + (n - 1) * self.sendmmsg_per_msg_ns

    def replace(self, **changes: object) -> "CostModel":
        """Return a copy with the given fields changed (ablation helper)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> Dict[str, object]:
        """Flat dict of every constant plus key derived values."""
        out: Dict[str, object] = dataclasses.asdict(self)
        out["derived.llc_sets"] = self.llc_sets
        out["derived.ddio_capacity_bytes"] = self.ddio_capacity_bytes
        out["derived.conn_footprint_bytes"] = self.conn_footprint_bytes
        return out


DEFAULT_COSTS = CostModel()
"""Shared default cost model; treat as immutable."""
