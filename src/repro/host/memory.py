"""Host DRAM and pinned-region allocation.

The control plane pins per-connection ring buffers here (§4.3: "allocates
(and pins) memory for a pair of per-connection ring-buffers"). The allocator
is a simple bump allocator over a fixed physical space; what matters to the
experiments is the *addresses* (they index the LLC model) and the accounting
(pinned bytes per owner).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .. import units
from ..errors import ConfigError, SimulationError


@dataclass(frozen=True)
class PinnedRegion:
    """A pinned, physically contiguous buffer."""

    base: int
    size: int
    owner: str
    name: str

    @property
    def end(self) -> int:
        return self.base + self.size

    def line_addrs(self, line_bytes: int = units.CACHE_LINE) -> List[int]:
        """Byte address of each cache line the region spans."""
        first = self.base - (self.base % line_bytes)
        return list(range(first, self.end, line_bytes))

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class MemorySystem:
    """Physical memory with pinned-region bookkeeping."""

    def __init__(self, total_bytes: int = 256 * units.GB, align: int = units.CACHE_LINE):
        if total_bytes <= 0:
            raise ConfigError(f"memory size must be positive, got {total_bytes}")
        self.total_bytes = total_bytes
        self.align = align
        self._next = 0
        self._regions: List[PinnedRegion] = []
        self._freed_bytes = 0

    def alloc_pinned(self, size: int, owner: str, name: str = "") -> PinnedRegion:
        """Pin ``size`` bytes for ``owner``; raises when physical memory is
        exhausted (pinned memory is never swappable)."""
        if size <= 0:
            raise SimulationError(f"allocation size must be positive, got {size}")
        aligned = -(-size // self.align) * self.align
        if self._next + aligned > self.total_bytes:
            raise SimulationError(
                f"out of pinned memory: {units.fmt_size(self._next)} in use, "
                f"requested {units.fmt_size(aligned)}"
            )
        region = PinnedRegion(base=self._next, size=aligned, owner=owner, name=name)
        self._next += aligned
        self._regions.append(region)
        return region

    def free(self, region: PinnedRegion) -> None:
        """Unpin a region. Space is accounted but not reused (bump allocator);
        at simulation scale fragmentation is irrelevant, accounting is not."""
        if region not in self._regions:
            raise SimulationError(f"double free or foreign region: {region}")
        self._regions.remove(region)
        self._freed_bytes += region.size

    @property
    def pinned_bytes(self) -> int:
        return sum(r.size for r in self._regions)

    def pinned_by_owner(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self._regions:
            out[r.owner] = out.get(r.owner, 0) + r.size
        return out

    def regions_of(self, owner: str) -> List[PinnedRegion]:
        return [r for r in self._regions if r.owner == owner]
