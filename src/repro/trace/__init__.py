"""repro.trace — the attributed tracing spine over every cost-charging site.

See ``docs/tracing.md`` for the stage taxonomy, the conservation invariant,
and the export format. The short version:

* :func:`charge` is the one chokepoint every charging site routes through;
  with tracing off it returns its cost untouched and records nothing.
* :class:`Tracer` (one per :class:`~repro.host.machine.Machine`) opens a
  :class:`TraceContext` per packet and collects "loose" work that belongs to
  no single packet.
* :mod:`repro.trace.export` turns a tracer into Chrome trace-event /
  Perfetto JSON (``python -m repro trace``).
"""

from .stages import (
    STAGES,
    STAGE_APP,
    STAGE_COHERENCE,
    STAGE_COPY,
    STAGE_DMA,
    STAGE_FASTPATH,
    STAGE_NETFILTER,
    STAGE_NIC_PIPELINE,
    STAGE_PROTO,
    STAGE_QDISC,
    STAGE_RING,
    STAGE_SCHED_WAKE,
    STAGE_SYSCALL,
    STAGE_WIRE,
)
from .tracer import Span, TraceContext, Tracer, charge
from .export import to_trace_events, to_json, write_trace

__all__ = [
    "STAGES",
    "STAGE_APP",
    "STAGE_SYSCALL",
    "STAGE_COPY",
    "STAGE_PROTO",
    "STAGE_NETFILTER",
    "STAGE_QDISC",
    "STAGE_FASTPATH",
    "STAGE_DMA",
    "STAGE_RING",
    "STAGE_NIC_PIPELINE",
    "STAGE_COHERENCE",
    "STAGE_WIRE",
    "STAGE_SCHED_WAKE",
    "Span",
    "TraceContext",
    "Tracer",
    "charge",
    "to_trace_events",
    "to_json",
    "write_trace",
]
