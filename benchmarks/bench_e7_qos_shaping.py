"""E7 — §2 QoS: weighted fair shares only with a process view."""

from repro.experiments.common import fmt_table
from repro.experiments.e7_qos_shaping import headline, run_e7


def test_e7_qos_shaping(once):
    rows = once(run_e7)
    print("\n" + fmt_table(rows))
    h = headline(rows)
    assert set(h["enforcing_planes"]) == {"kernel", "sidecar", "kopi"}
    # Enforced split is ~25/75; unshaped is far from it.
    assert abs(h["kopi_work_share_pct"] - 75) < 5
    assert abs(h["bypass_work_share_pct"] - 75) > 15
