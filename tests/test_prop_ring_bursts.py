"""Property tests: burst ring operations are equivalent to per-item loops.

post_burst/consume_burst must keep exactly the invariants of repeated
post/consume — FIFO order, head/tail advance, full-drop accounting,
wraparound — because the per-packet API is defined as the burst of one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host import MemorySystem
from repro.nic import DescriptorRing


def _ring(entries, name="r"):
    mem = MemorySystem()
    return DescriptorRing(entries, mem.alloc_pinned(1_024, owner="t"), name)


def _counters(ring):
    m = ring.metrics
    return {
        "posted": m.counter("posted").value,
        "consumed": m.counter("consumed").value,
        "full_drops": m.counter("full_drops").value,
    }


_ops = st.lists(
    st.one_of(
        st.lists(st.integers(0, 10_000), min_size=0, max_size=12)
        .map(lambda xs: ("post", xs)),
        st.integers(0, 14).map(lambda n: ("consume", n)),
    ),
    max_size=60,
)


class TestBurstEquivalence:
    @given(ops=_ops, entries=st.integers(1, 8))
    @settings(max_examples=200)
    def test_burst_ops_match_per_item_loops(self, ops, entries):
        """Interleaved post_burst/consume_burst on one ring behave exactly
        like try_post/consume loops on a reference ring."""
        burst, ref = _ring(entries, "burst"), _ring(entries, "ref")
        for op, arg in ops:
            if op == "post":
                posted = burst.post_burst(list(arg))
                ref_posted = sum(1 for item in arg if ref.try_post(item))
                assert posted == ref_posted
            else:
                got = burst.consume_burst(arg)
                want = [ref.consume() for _ in range(min(arg, ref.occupancy))]
                assert got == want
            assert burst.occupancy == ref.occupancy
            assert burst.head == ref.head
            assert burst.tail == ref.tail
            assert list(burst._items) == list(ref._items)
            assert _counters(burst) == _counters(ref)

    @given(
        entries=st.integers(1, 6),
        rounds=st.integers(1, 30),
        batch=st.integers(1, 10),
    )
    @settings(max_examples=150)
    def test_wraparound_preserves_fifo(self, entries, rounds, batch):
        """Head/tail wrap past the ring size many times; order and indices
        must stay consistent (head - tail == occupancy, FIFO intact)."""
        ring = _ring(entries)
        seq = iter(range(10_000))
        drained = []
        for _ in range(rounds):
            offered = [next(seq) for _ in range(batch)]
            ring.post_burst(offered)
            drained.extend(ring.consume_burst(batch))
            assert 0 <= ring.occupancy <= entries
            assert ring.head - ring.tail == ring.occupancy
        drained.extend(ring.consume_burst(ring.occupancy))
        # Everything that survived the full ring came out in FIFO order.
        assert drained == sorted(drained)
        assert ring.is_empty

    @given(sizes=st.lists(st.integers(0, 20), min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_conservation(self, sizes):
        """posted == consumed + occupancy + never-negative, whatever the
        burst pattern."""
        ring = _ring(4)
        offered = 0
        for n in sizes:
            offered += n
            ring.post_burst(list(range(n)))
            ring.consume_burst(n // 2)
        posted = ring.metrics.counter("posted").value
        consumed = ring.metrics.counter("consumed").value
        drops = ring.metrics.counter("full_drops").value
        assert posted + drops == offered
        assert posted == consumed + ring.occupancy
