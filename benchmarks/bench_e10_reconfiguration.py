"""E10 — §3/§4.4/§5: reconfiguration latency and a year of policy churn."""

from repro import units
from repro.experiments.common import fmt_table
from repro.experiments.e10_reconfiguration import (
    churn_rows,
    measure_kopi_config_update,
    measure_kopi_feature_update,
    run_e10,
)


def test_e10_update_latencies(once):
    rows = once(run_e10)
    print("\n" + fmt_table(rows))
    by_target = {r["target"]: r for r in rows}
    # Config changes are microseconds everywhere that supports them.
    assert by_target["kopi (overlay)"]["config_update_us"] < 1_000
    # Feature changes: possible on KOPI (seconds), impossible on fixed NICs.
    assert "hardware revision" in by_target["fixed-function NIC"]["feature_update"]
    assert "bitstream" in by_target["kopi (overlay)"]["feature_update"]


def test_e10_bitstream_outage_measured(once):
    result = once(measure_kopi_feature_update)
    print("\nbitstream reload:", result)
    assert result["offline_ns"] >= 2 * units.SEC
    assert result["drops"] > 0  # live traffic is lost while offline


def test_e10_overlay_is_fast(once):
    latency = once(measure_kopi_config_update)
    print(f"\noverlay config update: {units.fmt_time(latency)}")
    assert latency < 200 * units.US


def test_e10_churn(once):
    rows = once(churn_rows)
    print("\n" + fmt_table(rows))
    ff = next(r for r in rows if "fixed" in r["target"])
    assert ff["unsupported"] > 0
    kopi = next(r for r in rows if "kopi" in r["target"])
    assert kopi["unsupported"] == 0
