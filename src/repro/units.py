"""Units and unit conversions used throughout the simulator.

All simulated time is kept as **integer nanoseconds** so that event ordering
is exact and runs are bit-for-bit reproducible. All sizes are **bytes** and
all rates are **bits per second** unless a name says otherwise.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NS = 1
US = 1_000 * NS
MS = 1_000 * US
SEC = 1_000 * MS
MINUTE = 60 * SEC

# --- sizes -----------------------------------------------------------------

KB = 1_024
MB = 1_024 * KB
GB = 1_024 * MB

CACHE_LINE = 64

# --- rates -----------------------------------------------------------------

KBPS = 1_000
MBPS = 1_000 * KBPS
GBPS = 1_000 * MBPS


def ns_to_sec(ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns / SEC


def sec_to_ns(seconds: float) -> int:
    """Convert float seconds to integer nanoseconds (rounded)."""
    return round(seconds * SEC)


def bits(nbytes: int) -> int:
    """Number of bits in ``nbytes`` bytes."""
    return nbytes * 8


def transmit_time_ns(nbytes: int, rate_bps: int) -> int:
    """Serialization delay for ``nbytes`` at ``rate_bps``, in whole ns.

    Always at least 1 ns for a non-empty transfer so that events retain a
    strict ordering even at absurdly high simulated rates.
    """
    if nbytes <= 0:
        return 0
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    t = (bits(nbytes) * SEC) // rate_bps
    return max(t, 1)


def throughput_bps(nbytes: int, elapsed_ns: int) -> float:
    """Observed throughput in bits/second for ``nbytes`` over ``elapsed_ns``."""
    if elapsed_ns <= 0:
        return 0.0
    return bits(nbytes) * SEC / elapsed_ns


def fmt_rate(bps: float) -> str:
    """Human-readable rate, e.g. ``'97.3 Gbps'``."""
    for unit, div in (("Gbps", GBPS), ("Mbps", MBPS), ("Kbps", KBPS)):
        if bps >= div:
            return f"{bps / div:.2f} {unit}"
    return f"{bps:.0f} bps"


def fmt_time(ns: int) -> str:
    """Human-readable duration, e.g. ``'12.5 us'``."""
    if ns >= SEC:
        return f"{ns / SEC:.3f} s"
    if ns >= MS:
        return f"{ns / MS:.3f} ms"
    if ns >= US:
        return f"{ns / US:.3f} us"
    return f"{ns} ns"


def fmt_size(nbytes: int) -> str:
    """Human-readable size, e.g. ``'6.0 MiB'``."""
    if nbytes >= GB:
        return f"{nbytes / GB:.1f} GiB"
    if nbytes >= MB:
        return f"{nbytes / MB:.1f} MiB"
    if nbytes >= KB:
        return f"{nbytes / KB:.1f} KiB"
    return f"{nbytes} B"
