"""Fixed-function offload NIC — §3's cautionary strawman.

It ships with a small exact-match header filter table (like the flow
director blocks of the Intel NICs the paper cites) and nothing else. Table
*contents* update quickly over MMIO; the *feature set* cannot change without
new silicon, which :meth:`load_program` models by refusing — E10 counts
those refusals against a year of netfilter/sched churn.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import NicResourceExhausted, ReconfigurationUnsupported, UnsupportedOperation
from ..net.packet import Packet
from ..net.switch import MatchAction
from .base import BasicNic

FILTER_TABLE_ENTRIES = 32
SUPPORTED_ACTIONS = ("drop", "allow")


class FixedFunctionNic(BasicNic):
    """BasicNic + a bounded, header-only drop/allow table."""

    def __init__(self, *args: object, table_entries: int = FILTER_TABLE_ENTRIES, **kwargs: object):
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self.table_entries = table_entries
        self._filters: List[MatchAction] = []

    # --- the one thing it can do -------------------------------------------

    def install_filter(self, rule: MatchAction) -> None:
        """Insert a header-match rule (costs one MMIO table update)."""
        if rule.action not in SUPPORTED_ACTIONS:
            raise UnsupportedOperation(
                f"fixed-function table supports only {SUPPORTED_ACTIONS}, "
                f"not {rule.action!r}"
            )
        if len(self._filters) >= self.table_entries:
            raise NicResourceExhausted(
                f"filter table full ({self.table_entries} entries)"
            )
        self._filters.append(rule)

    def remove_filter(self, rule: MatchAction) -> None:
        self._filters.remove(rule)

    def rx_from_wire(self, pkt: Packet) -> None:
        for rule in self._filters:
            if rule.matches(pkt):
                if rule.action == "drop":
                    self.metrics.counter("hw_filter_drops").inc()
                    return
                break
        super().rx_from_wire(pkt)

    # --- the many things it cannot ---------------------------------------------

    def load_program(self, _program: object) -> None:
        """No programmable element: behaviour changes require new hardware
        — 'timescales measured in years' (§3)."""
        raise ReconfigurationUnsupported(
            "fixed-function NIC cannot load programs; new policy types "
            "require a hardware revision"
        )

    def install_owner_filter(self, **_kwargs: object) -> None:
        raise UnsupportedOperation(
            "fixed-function filter table matches headers only; owner "
            "matching needs kernel-resolved per-connection state"
        )

    def set_scheduler(self, _qdisc: object) -> None:
        raise ReconfigurationUnsupported(
            "fixed-function NIC has no programmable scheduler"
        )

    @property
    def filter_count(self) -> int:
        return len(self._filters)
