#!/usr/bin/env python3
"""Quickstart: boot a Norman (KOPI) host, run two applications, and use the
admin tools the paper says kernel bypass broke.

Run:  python examples/quickstart.py
"""

from repro.core import NormanOS
from repro.dataplanes import Testbed
from repro.dataplanes.testbed import PEER_IP
from repro.net import PROTO_UDP
from repro.sim import SimProcess
from repro.tools import Iptables, Netstat, Tcpdump


def main() -> None:
    # One simulated server: 8 cores, a 100 Gbps SmartNIC running the KOPI
    # dataplane, wired to a traffic peer.
    tb = Testbed(NormanOS)

    # Two tenants, one process each.
    pg = tb.spawn("postgres", user_name="bob", core_id=1)
    web = tb.spawn("nginx", user_name="charlie", core_id=2)

    # Connections are set up through the kernel (port arbitration included),
    # then the dataplane is pure app<->NIC rings.
    pg_ep = tb.dataplane.open_endpoint(pg, PROTO_UDP, 5432)
    web_ep = tb.dataplane.open_endpoint(web, PROTO_UDP, 8080)

    # tcpdump sees *everything*, attributed to processes — on a bypass-class
    # datapath.
    dump = Tcpdump(tb.dataplane)
    session = dump.start("udp")

    def postgres_app():
        for _ in range(3):
            yield pg_ep.send(256, dst=(PEER_IP, 9000))

    def web_app():
        for _ in range(2):
            yield web_ep.send(1_200, dst=(PEER_IP, 9001))

    SimProcess(tb.sim, postgres_app())
    SimProcess(tb.sim, web_app())
    tb.run_all()

    print("=== attributed tcpdump (global view + process view) ===")
    print(dump.format(session))

    print("\n=== netstat (socket table joined with the process table) ===")
    print(Netstat(tb.kernel)())

    # iptables with an owner match — the policy §2 says bypass cannot have.
    print("\n=== iptables: only bob's postgres may reach port 9000 ===")
    ipt = Iptables(tb.dataplane, tb.kernel)
    print(ipt("-A OUTPUT -p udp --dport 9000 -m owner --uid-owner bob "
              "--cmd-owner postgres -j ACCEPT"))
    print(ipt("-A OUTPUT -p udp --dport 9000 -j DROP"))
    tb.run_all()  # the control plane compiles and loads the overlay (~50 us)

    before = len(tb.peer.received)

    def violator():
        yield web_ep.send(100, dst=(PEER_IP, 9000))  # nginx tries postgres's port

    def legitimate():
        yield pg_ep.send(100, dst=(PEER_IP, 9000))

    SimProcess(tb.sim, violator())
    SimProcess(tb.sim, legitimate())
    tb.run_all()
    delivered = [p for p in tb.peer.received[before:]]
    print(f"packets that reached the wire afterwards: {len(delivered)} "
          f"(sender: {tb.dataplane.attribution_of(delivered[0])[2]})")
    print(ipt("-L OUTPUT -v"))

    print("\n=== NIC counters ===")
    stats = tb.dataplane.nic.stats()
    for key in sorted(k for k in stats if "pkts" in k or "filtered" in k):
        print(f"  {key} = {int(stats[key])}")


if __name__ == "__main__":
    main()
