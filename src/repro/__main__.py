"""Command-line entry point.

Usage::

    python -m repro report [--quick]   # run every experiment, print tables
    python -m repro matrix             # just the E3 capability matrix
    python -m repro costs              # dump the calibrated cost model
    python -m repro e1 .. e15 | f1     # one experiment's table
"""

from __future__ import annotations

import sys

from .config import DEFAULT_COSTS


def _experiment_mains():
    from .experiments import (
        e1_dataplane_overhead,
        e2_interposition_placement,
        e3_capability_matrix,
        e4_debugging,
        e5_port_partitioning,
        e6_blocking_io,
        e7_qos_shaping,
        e8_connection_scaling,
        e9_resource_exhaustion,
        e10_reconfiguration,
        e11_shared_rings,
        e12_batching,
        e13_zero_copy,
        e14_policy_churn,
        e15_flow_fastpath,
        f1_architecture,
        s1_tail_latency,
    )

    return {
        "e1": e1_dataplane_overhead.main,
        "e2": e2_interposition_placement.main,
        "e3": e3_capability_matrix.main,
        "e4": e4_debugging.main,
        "e5": e5_port_partitioning.main,
        "e6": e6_blocking_io.main,
        "e7": e7_qos_shaping.main,
        "e8": e8_connection_scaling.main,
        "e9": e9_resource_exhaustion.main,
        "e10": e10_reconfiguration.main,
        "e11": e11_shared_rings.main,
        "e12": e12_batching.main,
        "e13": e13_zero_copy.main,
        "e14": e14_policy_churn.main,
        "e15": e15_flow_fastpath.main,
        "f1": f1_architecture.main,
        "s1": s1_tail_latency.main,
    }


def main(argv: "list[str]") -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    cmd = argv[0]
    if cmd == "report":
        from .experiments.report import main as report_main

        print(report_main(argv[1:]))
        return 0
    if cmd == "matrix":
        from .experiments.e3_capability_matrix import main as e3_main

        print(e3_main())
        return 0
    if cmd == "costs":
        for key, value in DEFAULT_COSTS.describe().items():
            print(f"{key} = {value}")
        return 0
    mains = _experiment_mains()
    if cmd in mains:
        print(mains[cmd]())
        return 0
    print(f"unknown command {cmd!r}; try --help", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
