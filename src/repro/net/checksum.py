"""RFC 1071 Internet checksum."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """One's-complement sum over 16-bit words, as used by IPv4/TCP/UDP.

    Odd-length input is padded with a zero byte, per the RFC.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF
