"""NormanOS — the assembled KOPI operating system (Figure 1).

Implements the same :class:`~repro.dataplanes.base.Dataplane` interface as
the baselines, so every experiment can swap it in directly. The claims it
embodies:

* dataplane packets never pass the software kernel (bypass-class per-packet
  cost);
* the kernel configures the NIC, so iptables/tc/tcpdump/netstat keep
  working — including owner matches and cgroup shaping;
* blocking I/O works via notification queues;
* every packet is attributable to a process.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import CostModel
from ..errors import SimulationError
from ..host.machine import Machine
from ..interpose import InterpositionPoint
from ..kernel.kernel import Kernel
from ..kernel.netfilter import NetfilterRule
from ..kernel.qdisc import DEFAULT_CLASS
from ..net.addresses import IPv4Address, MacAddress
from ..net.link import Link
from ..net.packet import Packet
from ..sim import Signal
from ..dataplanes.base import (
    CaptureSession,
    Dataplane,
    PacketFilter,
    QosConfig,
    describe_qos,
)
from .control_plane import ControlPlane
from .library import NormanEndpoint
from .nic_dataplane import KOPI_BITSTREAM, KopiNic
from .sniffer import Sniffer


class NormanOS(Dataplane):
    """KOPI: kernel-managed dataplane on a programmable SmartNIC."""

    name = "kopi"
    supports_blocking_io = True

    def __init__(
        self,
        machine: Machine,
        host_ip: IPv4Address,
        host_mac: MacAddress,
        egress: Link,
        shared_rings: bool = False,
        smartnic_sram_bytes: Optional[int] = None,
    ):
        self.machine = machine
        self.costs: CostModel = machine.costs
        machine.tracer.plane = self.name
        self.sniffer = Sniffer(machine.sim)
        self.nic = KopiNic(machine, egress, self.sniffer)
        if smartnic_sram_bytes is not None:
            from ..nic.smartnic.sram import SramAllocator

            self.nic.sram = SramAllocator(smartnic_sram_bytes, name="kopi0.sram")
        # The NIC ships factory-flashed with the KOPI image; later policy
        # changes use overlay loads, feature changes use load_bitstream.
        self.nic.fpga.factory_flash(KOPI_BITSTREAM)
        # Software-path egress (fallback connections, kernel's own traffic)
        # still flows through the NIC scheduler and the sniffer, so the
        # global view holds even for slow-path packets.
        self.kernel = Kernel(
            machine, host_ip, host_mac,
            nic_send=self._slowpath_tx, tx_rate_bps=egress.rate_bps,
        )
        self.control = ControlPlane(self.kernel, self.nic, machine, shared_rings=shared_rings)
        # KOPI's on-NIC mechanisms, registered with the machine's engine
        # ("netfilter" comes from Kernel, "overlay_filters" and "conntrack"
        # from the control plane).
        engine = machine.interpose
        self.sniffer.point = engine.register(InterpositionPoint(
            name="sniffer", plane="nic", mechanism="tap",
            install_latency_ns=self.costs.table_update_ns,
            target=self.sniffer,
        ))
        qdisc_point = engine.register(InterpositionPoint(
            name="qdisc", plane="nic", mechanism="qdisc",
            install_latency_ns=self.costs.table_update_ns,
            target=self.nic.scheduler,
        ))
        qdisc_point.describe = lambda: describe_qos(qdisc_point.policy)
        self.nic.scheduler.point = qdisc_point
        self.nic.steering.point = engine.register(InterpositionPoint(
            name="steering", plane="nic", mechanism="steering",
            install_latency_ns=self.costs.table_update_ns,
            target=self.nic.steering,
        ))
        # Hybrid fidelity: the NIC promotes flows through us and the egress
        # scheduler's backlog is a demotion boundary. (Policy commits and
        # verdict-cache events are wired machine-wide by Machine itself.)
        if machine.ff is not None:
            self.nic.ff_plane = self
            if self.costs.ff_tx:
                self.tx_ff = KopiTxFastForward(self)
                self.nic.tx_ff_plane = self.tx_ff
            self.nic.scheduler.backlog_demote_threshold = (
                self.costs.ff_qdisc_backlog)
            self.nic.scheduler.on_backlog_pressure = machine.ff.on_qdisc_pressure
        # Per-tenant egress scheduling: replace the factory FIFO drain with
        # a DRR/WFQ discipline holding one class per tenant, and rebuild it
        # whenever the registry changes (new tenant, weight update). The
        # qdisc interposition point stays attached to the runner, so the
        # swap is a recorded commit like any tc change.
        if self.costs.tenant_isolation:
            self._install_tenant_scheduler()
            machine.tenants.on_change.append(self._install_tenant_scheduler)

    def _install_tenant_scheduler(self) -> None:
        """Build the per-tenant egress qdisc from the registry's weight map.

        Both ``tenant_sched`` settings land here: ``"drr"`` uses the byte
        quantum directly, ``"wfq"`` reads the same weights as rate shares —
        DRR with per-weight quanta *is* a packetized weighted fair queue,
        so one discipline realizes both (docs/multi_tenancy.md)."""
        from ..kernel.qdisc import DrrQdisc

        weights = self.machine.tenants.sched_weights()
        self.nic.set_scheduler(
            DrrQdisc(weights, quantum_bytes=self.costs.tenant_quantum_bytes),
            set(weights),
        )
        self.nic.tenant_classes = True

    # --- wire plumbing ------------------------------------------------------

    def wire_rx(self, pkt: Packet) -> None:
        self.nic.rx_from_wire(pkt)

    def wire_rx_fluid(self, n: int, wire_len: int, dport: int = 0,
                      flow=None, eth_dst=None) -> None:
        """Bulk counterpart of :meth:`wire_rx` for the cross-machine fluid
        path: a sender-side TX epoch arriving over the switch lands directly
        in this host's promoted RX flow. The rack promotion protocol
        guarantees the receiver is fluid for ``flow`` (the gate checks it,
        and any RX demotion demotes the sender first), so a miss here is a
        protocol violation, not a slow path."""
        ff = self.machine.ff
        if ff is None or flow is None or not ff.absorb(flow, n):
            raise SimulationError(
                f"{self.name}: fluid wire arrival for {flow!r} with no "
                "promoted RX flow — the rack promotion protocol was "
                "bypassed")

    def _slowpath_tx(self, pkt: Packet) -> None:
        self.sniffer.mirror(pkt)
        self.nic.scheduler.submit(pkt, DEFAULT_CLASS)

    # --- application surface ---------------------------------------------------

    def open_endpoint(self, proc, proto: int, port: Optional[int] = None) -> NormanEndpoint:
        conn = self.control.open_connection(proc, proto, port)
        return NormanEndpoint(self, conn)

    # --- administrative surface ---------------------------------------------------

    def install_filter_rule(self, rule: NetfilterRule) -> Signal:
        """Owner rules welcome: the control plane resolves them to
        connection ids and compiles an overlay program."""
        return self.control.install_filter_rule(rule)

    def configure_qos(self, config: QosConfig) -> Signal:
        return self.control.configure_qos(config)

    def start_capture(
        self, match: Optional[PacketFilter] = None, name: str = "capture"
    ) -> CaptureSession:
        return self.sniffer.start(match, name)

    def attribution_of(self, pkt: Packet) -> Optional[Tuple[int, int, str]]:
        if pkt.meta.owner_pid is None:
            return None
        return (pkt.meta.owner_pid, pkt.meta.owner_uid, pkt.meta.owner_comm)

    def arp_entries(self) -> List[object]:
        return self.kernel.arp_cache.entries()

    def data_movements(self) -> Dict[str, int]:
        """Steady-state dataplane movement is zero; syscalls happen only at
        connection setup and policy changes (the control plane)."""
        return {
            "virtual": 0,
            "virtual_copied_bytes": 0,
            "physical": 0,
            "control_plane_syscalls": self.kernel.syscalls.total_syscalls,
        }

    # --- hybrid fidelity -----------------------------------------------------

    def _ff_conn(self, flow):
        """The live, NIC-resident connection a cached RX verdict delivers
        to, or None if any part of the chain is not steady-state."""
        fp = self.machine.fastpath
        if fp is None:
            return None, None
        from ..interpose.fastpath import CHAIN_KOPI_RX

        entry = fp.peek(CHAIN_KOPI_RX, flow)
        if entry is None or entry.conn_id is None:
            return None, None
        from ..overlay.isa import VERDICT_DROP

        if entry.verdict == VERDICT_DROP:
            return None, None
        conn = self.nic.conn_resolver(entry.conn_id)
        if conn is None or conn.closed or conn.fallback:
            return None, None
        return entry, conn

    def ff_eligible(self, flow) -> bool:
        """Steady state on KOPI means: the composed RX verdict (steering +
        overlay filter + conntrack attach) is live in the flow cache, it
        delivers to a healthy NIC-resident connection, and nothing that
        inspects or rewrites individual packets is attached — no capture
        session (the sniffer must see real packets), no NAT (per-packet
        rewrites), no structural LLC (per-line cache state would make the
        frozen read cost wrong). Under tenant isolation, promotion also
        consults quota headroom: a tenant at its flowtable quota or over
        its SRAM cap is about to start evicting/falling back, which is
        exactly the regime the exact path must keep simulating."""
        entry, conn = self._ff_conn(flow)
        if conn is None:
            return False
        if self.sniffer.active_sessions:
            return False
        if self.nic.nat is not None:
            return False
        if self.machine.llc is not None:
            return False
        tenants = self.machine.tenants
        if tenants.isolation:
            tenant = tenants.resolve(conn.proc)
            fp = self.machine.fastpath
            if fp is not None and fp.at_quota(tenant):
                return False
            if not self.nic.sram.tenant_headroom(tenant):
                return False
        return True

    def ff_profile(self, flow, pkt):
        """Freeze the steady-state per-packet shape: the fixed NIC pipeline
        and flow-cache hit (hardware time), then the library's descriptor
        consume and analytic memory read (CPU time on the owner's core).
        The deliver closure replays every counter the exact path moves —
        NIC meters, cache hit/skip counters, the cached conntrack entry,
        the DMA-direct copy ledger, and receive credit + notification."""
        from ..host.copies import LAYER_DMA_DIRECT
        from ..interpose.fastpath import CHAIN_KOPI_RX
        from ..nic.notification import KIND_RX_READY
        from ..sim.fastforward import FlowProfile
        from ..trace import (
            STAGE_COHERENCE,
            STAGE_FASTPATH,
            STAGE_NIC_PIPELINE,
            STAGE_RING,
        )

        entry, conn = self._ff_conn(flow)
        if conn is None:
            return None
        machine = self.machine
        fp = machine.fastpath
        costs = self.costs
        wire_len = pkt.wire_len
        payload_len = pkt.payload_len
        # Same line count the delivery path will stamp on the packet
        # (pkt.meta.notes["lines"] is not attached yet on the RX hot path).
        n_lines = min(
            self.nic._lines_for(pkt), len(conn.rings.rx.region.line_addrs()))
        read_ns = machine.ddio_model.read_cost_ns(
            self.control.active_hot_bytes(), n_lines)
        spans = (
            (STAGE_NIC_PIPELINE, self.nic._fixed_latency(), False, "rx_pipeline"),
            (STAGE_FASTPATH, fp.hit_ns, False, "rx_flow_cache"),
            (STAGE_RING, costs.bypass_rx_pkt_ns, True, "rx_desc"),
            (STAGE_COHERENCE, read_ns, True, "mem_read"),
        )
        points = entry.points
        ct_entry = entry.ct_entry
        ft = flow
        nic = self.nic
        src_ip, sport = ft.src_ip, ft.sport
        # Metric objects are stable for the machine's lifetime — resolve
        # them once at profile capture, not per epoch.
        rx_pkts = nic.metrics.counter("rx_pkts")
        rx_bytes = nic.metrics.meter("rx_bytes")

        def deliver(n: int) -> None:
            now = machine.sim.now
            rx_pkts.inc(n)
            rx_bytes.record(now, n * wire_len)
            fp.bulk_hit(CHAIN_KOPI_RX, ft, None, n, points=points)
            if nic.conntrack is not None and ct_entry is not None:
                ct_entry.packets += n
                ct_entry.bytes += n * wire_len
                ct_entry.last_seen_ns = now
                fp.note_skipped("conntrack", n)
            machine.copies.charge(LAYER_DMA_DIRECT, n * wire_len, 0, ops=n)
            conn.rx_packets += n
            conn.fluid_rx.append([n, payload_len, src_ip, sport])
            if conn.notify_rx and nic.notify is not None:
                nic.notify(conn, KIND_RX_READY, n)

        return FlowProfile(
            spans, core_id=conn.proc.core_id, wire_len=wire_len,
            payload_len=payload_len, src_ip=src_ip, sport=sport,
            deliver=deliver, conn_id=conn.conn_id, versions=entry.versions,
            tenant_tid=(machine.tenants.resolve(conn.proc).tid
                        if costs.tenants else None),
        )


class KopiTxFastForward:
    """The TX-side fast-forward surface of :class:`NormanOS`.

    A separate promotion plane (same controller, same boundaries) because
    the steady-state shape is a different chain: app timer → descriptor
    post → doorbell MMIO → PCIe descriptor fetch → TX verdict cache →
    fixed pipeline → (empty) qdisc → wire. Promotion is driven by TX
    verdict-cache hits in the NIC's drain loop; absorption happens one
    layer up, in :meth:`NormanEndpoint.send_burst`, where an absorbed send
    never even enters the ring. Epoch charging reuses the shared
    :class:`~repro.dataplanes.base.Dataplane` bulk/group charge — the
    surface carries the same ``name``/``machine`` contract, and its spans
    land under the same plane tag so the E16 taxonomy stays one table.
    """

    name = NormanOS.name

    # Plain function reuse: the shared epoch charges only touch
    # self.machine / self.name, both of which this surface provides.
    ff_bulk_charge = Dataplane.ff_bulk_charge
    ff_group_charge = Dataplane.ff_group_charge

    def __init__(self, os: NormanOS):
        self._os = os
        self.machine = os.machine

    def _ff_conn(self, flow):
        """The live, NIC-resident connection whose cached TX verdict covers
        ``flow``, or None if any part of the chain is not steady-state."""
        machine = self._os.machine
        fp = machine.fastpath
        if fp is None:
            return None, None
        from ..interpose.fastpath import CHAIN_KOPI_TX

        entry = fp.peek(CHAIN_KOPI_TX, flow)
        if entry is None or entry.conn_id is None:
            return None, None
        from ..overlay.isa import VERDICT_DROP

        if entry.verdict == VERDICT_DROP:
            return None, None
        if entry.qdisc_class is not None:
            # Non-default scheduling class: fairness arbitration between
            # classes is load-dependent, not a frozen per-packet shape.
            return None, None
        conn = self._os.nic.conn_resolver(entry.conn_id)
        if conn is None or conn.closed or conn.fallback:
            return None, None
        return entry, conn

    def ff_eligible(self, flow) -> bool:
        """Steady state on the KOPI TX path: the cached verdict delivers a
        healthy NIC-resident connection to the default class, nothing
        per-packet-interesting is attached (capture, NAT, policer token
        bucket, congestion pacing, structural LLC), the TX ring is empty
        (isolated single sends — the app-timer shape) and the egress qdisc
        carries no backlog (zero queue residency is part of the frozen
        profile)."""
        from .nic_dataplane import SLOT_POLICER

        entry, conn = self._ff_conn(flow)
        if conn is None:
            return False
        os_ = self._os
        nic = os_.nic
        if os_.sniffer.active_sessions:
            return False
        if nic.nat is not None or nic.congestion is not None:
            return False
        if nic.fpga.machine(SLOT_POLICER) is not None:
            return False
        if os_.machine.llc is not None:
            return False
        if conn.rate_bps is not None:
            return False
        if not conn.rings.tx.is_empty:
            return False
        if nic.scheduler.backlog:
            return False
        if not nic.egress.has_fluid_rx:
            # The wire is a fidelity boundary: with nothing on the far end
            # able to absorb a fluid epoch (no single-host peer hook, no
            # rack coordinator), an absorbed send would vanish at the link.
            # On the multihost testbed this is literally demote-at-wire —
            # cross-host TX stays exact unless ff_cross_machine wired the
            # uplink into the switch's fluid path.
            return False
        tenants = os_.machine.tenants
        if tenants.isolation:
            # Quota headroom gates promotion (same rationale as the RX
            # side); the zero-backlog check above already guarantees the
            # per-tenant DRR is work-conserving FIFO for the frozen shape.
            tenant = tenants.resolve(conn.proc)
            fp = os_.machine.fastpath
            if fp is not None and fp.at_quota(tenant):
                return False
            if not nic.sram.tenant_headroom(tenant):
                return False
        return True

    def ff_profile(self, flow, pkt):
        """Freeze the steady-state per-send shape of a single-packet burst:
        descriptor post + doorbell MMIO (CPU on the owner's core), PCIe
        descriptor fetch, TX flow-cache hit, the fixed pipeline, and the
        uncontended wire. The deliver closure replays every counter the
        exact path moves — connection/NIC/DMA/ledger counters, the cached
        conntrack entry, cache hits, the qdisc's zero-residency transit,
        the egress link, and the peer's bulk receive."""
        from .. import units
        from ..host.copies import LAYER_DMA
        from ..interpose.fastpath import CHAIN_KOPI_TX
        from ..nic.notification import KIND_TX_DRAINED
        from ..sim.fastforward import FlowProfile
        from ..trace import (
            STAGE_DMA,
            STAGE_FASTPATH,
            STAGE_NIC_PIPELINE,
            STAGE_RING,
            STAGE_WIRE,
        )

        entry, conn = self._ff_conn(flow)
        if conn is None:
            return None
        os_ = self._os
        machine = os_.machine
        nic = os_.nic
        fp = machine.fastpath
        costs = os_.costs
        wire_len = pkt.wire_len
        payload_len = pkt.payload_len
        egress = nic.egress
        pcie_ser = units.transmit_time_ns(wire_len, costs.pcie_bandwidth_bps)
        wire_ns = (units.transmit_time_ns(wire_len, egress.rate_bps)
                   + egress.propagation_ns)
        spans = (
            (STAGE_RING, costs.bypass_tx_pkt_ns, True, "tx_desc"),
            (STAGE_DMA, costs.mmio_write_ns, True, "doorbell"),
            (STAGE_DMA, costs.pcie_dma_latency_ns, False, "desc_fetch"),
            (STAGE_FASTPATH, fp.hit_ns, False, "tx_flow_cache"),
            (STAGE_NIC_PIPELINE, nic._fixed_latency(), False, "tx_pipeline"),
            (STAGE_WIRE, wire_ns, False, egress.name),
        )
        points = entry.points
        ct_entry = entry.ct_entry
        ft = flow
        dport = ft.dport
        # The frame's L2 destination rides along on fluid sends so the
        # switch's fluid fast path can resolve the learned port without
        # materializing frames (single-host links ignore it).
        eth_dst = pkt.eth.dst
        # Metric objects are stable for the machine's lifetime — resolve
        # them once at profile capture, not per epoch.
        mmio_writes = machine.dma.metrics.counter("mmio_writes")
        tx_pkts = nic.metrics.counter("tx_pkts")
        tx_bytes = nic.metrics.meter("tx_bytes")

        def deliver(n: int) -> None:
            now = machine.sim.now
            conn.tx_packets += n
            # The doorbell count the absorbed sends never rang (the span
            # carries its nanoseconds; mmio_write_cost() is not re-called
            # because pricing and counting are fused there).
            mmio_writes.inc(n)
            machine.copies.charge(LAYER_DMA, n * wire_len, n * pcie_ser, ops=n)
            fp.bulk_hit(CHAIN_KOPI_TX, ft, None, n, points=points)
            if nic.conntrack is not None and ct_entry is not None:
                ct_entry.packets += n
                ct_entry.bytes += n * wire_len
                ct_entry.last_seen_ns = now
                fp.note_skipped("conntrack", n)
            nic.scheduler.note_fluid(n)
            tx_pkts.inc(n)
            tx_bytes.record(now, n * wire_len)
            egress.send_fluid(n, wire_len, dport, ft, eth_dst)
            if nic.notify is not None:
                nic.notify(conn, KIND_TX_DRAINED, n)

        return FlowProfile(
            spans, core_id=conn.proc.core_id, wire_len=wire_len,
            payload_len=payload_len, src_ip=ft.src_ip, sport=ft.sport,
            deliver=deliver, conn_id=conn.conn_id, versions=entry.versions,
            tenant_tid=(machine.tenants.resolve(conn.proc).tid
                        if costs.tenants else None),
        )
