"""Policy -> overlay compilation (the §4.4 iptables/tc lowering)."""

import pytest

from repro import units
from repro.config import DEFAULT_COSTS
from repro.errors import PolicyError
from repro.kernel import ACCEPT, DROP, NetfilterRule
from repro.net import IPv4Address, MacAddress, PROTO_TCP, make_tcp, make_udp
from repro.overlay import (
    OverlayMachine,
    VERDICT_ACCEPT,
    VERDICT_DROP,
    compile_classifier,
    compile_filter_rules,
    verify,
)
from repro.overlay.compiler import compile_rate_limiter

MAC_A, MAC_B = MacAddress.from_index(1), MacAddress.from_index(2)
IP_A, IP_B = IPv4Address.parse("10.0.0.1"), IPv4Address.parse("10.0.0.2")


def tcp(dport=5432, conn_id=None):
    pkt = make_tcp(MAC_A, MAC_B, IP_A, IP_B, sport=40_000, dport=dport)
    if conn_id is not None:
        pkt.meta.conn_id = conn_id
    return pkt


def run(prog, pkt, now=0):
    verify(prog)
    return OverlayMachine(prog, DEFAULT_COSTS).execute(pkt, now)


class TestFilterCompilation:
    def test_header_only_rule(self):
        prog = compile_filter_rules([NetfilterRule(verdict=DROP, proto=PROTO_TCP, dport=5432)])
        assert run(prog, tcp(dport=5432)).verdict == VERDICT_DROP
        assert run(prog, tcp(dport=80)).verdict == VERDICT_ACCEPT

    def test_owner_rule_resolved_to_connections(self):
        """§2 port partition: 'only Bob's postgres on 5432'. The control
        plane resolves Bob's postgres to connections {3, 9}."""
        rules = [
            NetfilterRule(verdict=ACCEPT, dport=5432, uid_owner=1000, cmd_owner="postgres"),
            NetfilterRule(verdict=DROP, dport=5432),
        ]
        prog = compile_filter_rules(rules, resolve_conns=lambda r: [3, 9])
        m = OverlayMachine(prog, DEFAULT_COSTS)
        verify(prog)
        assert m.execute(tcp(conn_id=3), 0).verdict == VERDICT_ACCEPT
        assert m.execute(tcp(conn_id=9), 0).verdict == VERDICT_ACCEPT
        assert m.execute(tcp(conn_id=4), 0).verdict == VERDICT_DROP  # another app
        assert m.execute(tcp(dport=80, conn_id=4), 0).verdict == VERDICT_ACCEPT
        # Per-rule counters landed on the right rules.
        assert m.counters == [2, 1]

    def test_owner_rule_with_no_connections_skipped(self):
        rules = [
            NetfilterRule(verdict=ACCEPT, dport=5432, uid_owner=1000),
            NetfilterRule(verdict=DROP, dport=5432),
        ]
        prog = compile_filter_rules(rules, resolve_conns=lambda r: [])
        assert run(prog, tcp(conn_id=1)).verdict == VERDICT_DROP

    def test_owner_rule_without_resolver_fails_loudly(self):
        rules = [NetfilterRule(verdict=DROP, uid_owner=1000, dport=1)]
        with pytest.raises(PolicyError, match="resolver"):
            compile_filter_rules(rules)
        with pytest.raises(PolicyError, match="resolved"):
            compile_filter_rules(rules, resolve_conns=lambda r: None)

    def test_ip_matches_compile(self):
        prog = compile_filter_rules([NetfilterRule(verdict=DROP, src_ip=IP_A, dst_ip=IP_B)])
        assert run(prog, tcp()).verdict == VERDICT_DROP
        other = make_udp(MAC_B, MAC_A, IP_B, IP_A, 1, 2)
        assert run(prog, other).verdict == VERDICT_ACCEPT

    def test_empty_ruleset_accepts(self):
        prog = compile_filter_rules([])
        assert run(prog, tcp()).verdict == VERDICT_ACCEPT

    def test_rule_order_preserved(self):
        rules = [
            NetfilterRule(verdict=ACCEPT, dport=5432, sport=40_000),
            NetfilterRule(verdict=DROP, dport=5432),
        ]
        prog = compile_filter_rules(rules)
        assert run(prog, tcp()).verdict == VERDICT_ACCEPT


class TestClassifierCompilation:
    def test_conn_to_classid(self):
        prog = compile_classifier({5: 0x10001, 6: 0x10002}, default_classid=0)
        assert run(prog, tcp(conn_id=5)).sched_class == 0x10001
        assert run(prog, tcp(conn_id=6)).sched_class == 0x10002
        assert run(prog, tcp(conn_id=99)).sched_class == 0

    def test_empty_map_defaults(self):
        prog = compile_classifier({}, default_classid=7)
        assert run(prog, tcp(conn_id=1)).sched_class == 7


class TestRateLimiter:
    def test_policer_program(self):
        prog = compile_rate_limiter(8 * units.MBPS, 2_000)
        verify(prog)
        m = OverlayMachine(prog, DEFAULT_COSTS)
        m.configure_meter(0, 8 * units.MBPS, 2_000)
        pkt = make_udp(MAC_A, MAC_B, IP_A, IP_B, 1, 2, 958)
        verdicts = [m.execute(pkt, 0).verdict for _ in range(3)]
        assert verdicts == [VERDICT_ACCEPT, VERDICT_ACCEPT, VERDICT_DROP]

    def test_validation(self):
        with pytest.raises(PolicyError):
            compile_rate_limiter(0, 100)
