"""Command-line entry point.

Usage::

    python -m repro report [--quick]   # run every experiment, print tables
    python -m repro matrix             # just the E3 capability matrix
    python -m repro costs              # dump the calibrated cost model
    python -m repro e1 .. e18 | e21 .. e23 | f1  # one experiment's table
    python -m repro trace [plane] [--out FILE]   # traced run -> Chrome JSON
    python -m repro profile <exp> [--top N]      # cProfile one experiment
"""

from __future__ import annotations

import sys

from .config import DEFAULT_COSTS


def _experiment_mains():
    from .experiments import (
        e1_dataplane_overhead,
        e2_interposition_placement,
        e3_capability_matrix,
        e4_debugging,
        e5_port_partitioning,
        e6_blocking_io,
        e7_qos_shaping,
        e8_connection_scaling,
        e9_resource_exhaustion,
        e10_reconfiguration,
        e11_shared_rings,
        e12_batching,
        e13_zero_copy,
        e14_policy_churn,
        e15_flow_fastpath,
        e16_latency_anatomy,
        e17_multi_tenant,
        e18_cluster,
        e21_fidelity_crossover,
        e22_group_fastforward,
        e23_rack_fastforward,
        f1_architecture,
        s1_tail_latency,
    )

    return {
        "e1": e1_dataplane_overhead.main,
        "e2": e2_interposition_placement.main,
        "e3": e3_capability_matrix.main,
        "e4": e4_debugging.main,
        "e5": e5_port_partitioning.main,
        "e6": e6_blocking_io.main,
        "e7": e7_qos_shaping.main,
        "e8": e8_connection_scaling.main,
        "e9": e9_resource_exhaustion.main,
        "e10": e10_reconfiguration.main,
        "e11": e11_shared_rings.main,
        "e12": e12_batching.main,
        "e13": e13_zero_copy.main,
        "e14": e14_policy_churn.main,
        "e15": e15_flow_fastpath.main,
        "e16": e16_latency_anatomy.main,
        "e17": e17_multi_tenant.main,
        "e18": e18_cluster.main,
        "e21": e21_fidelity_crossover.main,
        "e22": e22_group_fastforward.main,
        "e23": e23_rack_fastforward.main,
        "f1": f1_architecture.main,
        "s1": s1_tail_latency.main,
    }


def _trace_main(argv: "list[str]") -> int:
    """Run one plane's traced bulk TX and export a Chrome/Perfetto trace.

    ``repro trace [plane] [--out FILE]`` — plane defaults to ``kernel``;
    without ``--out`` the stage report prints instead of writing JSON.
    Load the file at ui.perfetto.dev or chrome://tracing.
    """
    import json
    from dataclasses import replace

    from .experiments.common import planes_under_test, run_bulk_tx
    from .trace import to_trace_events, write_trace

    out = None
    args = list(argv)
    if "--out" in args:
        i = args.index("--out")
        try:
            out = args[i + 1]
        except IndexError:
            print("trace: --out needs a path", file=sys.stderr)
            return 2
        del args[i:i + 2]
    plane_name = args[0] if args else "kernel"
    by_name = {cls.name: cls for cls in planes_under_test()}
    if plane_name not in by_name:
        print(f"trace: unknown plane {plane_name!r}; "
              f"choose from {sorted(by_name)}", file=sys.stderr)
        return 2
    traced = replace(DEFAULT_COSTS, trace=True)
    row = run_bulk_tx(by_name[plane_name], 1_458, 64, costs=traced,
                      return_tb=True)
    tracer = row.pop("tb").machine.tracer
    if out is not None:
        n = write_trace(tracer, out)
        print(f"{plane_name}: wrote {n} trace events to {out}")
    else:
        report = tracer.report()
        print(json.dumps(report, indent=2, sort_keys=True))
        print(f"({len(to_trace_events(tracer))} trace events; "
              f"re-run with --out FILE for Perfetto JSON)")
    return 0


def _profile_main(argv: "list[str]") -> int:
    """Run one plane or experiment under cProfile and print the hottest
    functions.

    ``repro profile <plane|experiment> [--top N]`` — a plane name
    (``kernel``, ``kopi``, ...) profiles that plane's bulk-TX run (the
    same workload ``repro trace`` uses); an experiment key (``e1`` ..
    ``e23``, ``f1``, ``s1``) profiles that experiment's ``main``. N
    defaults to 30 cumulative-time rows. The run's own table is
    suppressed; this command answers "where does the wall clock go", not
    "what did the run conclude".
    """
    import cProfile
    import pstats

    from .experiments.common import planes_under_test, run_bulk_tx

    top = 30
    args = list(argv)
    if "--top" in args:
        i = args.index("--top")
        try:
            top = int(args[i + 1])
        except (IndexError, ValueError):
            print("profile: --top needs an integer", file=sys.stderr)
            return 2
        del args[i:i + 2]
    if not args:
        print("profile: profile what? e.g. `repro profile kopi` or "
              "`repro profile e22`", file=sys.stderr)
        return 2
    name = args[0]
    mains = _experiment_mains()
    planes = {cls.name: cls for cls in planes_under_test()}
    if name in planes:
        def target() -> None:
            run_bulk_tx(planes[name], 1_458, 4_096)
    elif name in mains:
        target = mains[name]
    else:
        print(f"profile: unknown target {name!r}; choose a plane "
              f"({sorted(planes)}) or experiment ({sorted(mains)})",
              file=sys.stderr)
        return 2
    profiler = cProfile.Profile()
    profiler.enable()
    target()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return 0


def main(argv: "list[str]") -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    cmd = argv[0]
    if cmd == "report":
        from .experiments.report import main as report_main

        print(report_main(argv[1:]))
        return 0
    if cmd == "matrix":
        from .experiments.e3_capability_matrix import main as e3_main

        print(e3_main())
        return 0
    if cmd == "trace":
        return _trace_main(argv[1:])
    if cmd == "profile":
        return _profile_main(argv[1:])
    if cmd == "costs":
        for key, value in DEFAULT_COSTS.describe().items():
            print(f"{key} = {value}")
        return 0
    mains = _experiment_mains()
    if cmd in mains:
        print(mains[cmd]())
        return 0
    print(f"unknown command {cmd!r}; try --help", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
