"""Core and CpuSet behaviour."""

import pytest

from repro.config import DEFAULT_COSTS
from repro.errors import SimulationError
from repro.host import Core, CpuSet
from repro.sim import SimProcess, Simulator


class TestCore:
    def test_execute_completes_after_cost(self):
        sim = Simulator()
        core = Core(sim, 0, DEFAULT_COSTS)
        done_at = []
        core.execute(500).add_callback(lambda s: done_at.append(sim.now))
        sim.run()
        assert done_at == [500]
        assert core.busy_ns == 500

    def test_work_serializes_fifo(self):
        sim = Simulator()
        core = Core(sim, 0, DEFAULT_COSTS)
        ends = []
        core.execute(100).add_callback(lambda s: ends.append(("a", sim.now)))
        core.execute(50).add_callback(lambda s: ends.append(("b", sim.now)))
        sim.run()
        assert ends == [("a", 100), ("b", 150)]

    def test_utilization_full_when_saturated(self):
        sim = Simulator()
        core = Core(sim, 0, DEFAULT_COSTS)
        core.execute(1_000)
        sim.run()
        assert core.utilization() == 1.0

    def test_utilization_partial(self):
        sim = Simulator()
        core = Core(sim, 0, DEFAULT_COSTS)
        core.execute(250)
        sim.run()
        sim.after(750, lambda: None)
        sim.run()
        assert core.utilization() == pytest.approx(0.25)

    def test_idle_gap_not_counted_busy(self):
        sim = Simulator()
        core = Core(sim, 0, DEFAULT_COSTS)

        def worker():
            yield core.execute(100)
            yield 900  # blocked, core idle
            yield core.execute(100)

        SimProcess(sim, worker())
        sim.run()
        assert sim.now == 1_100
        assert core.busy_ns == 200

    def test_negative_cost_rejected(self):
        sim = Simulator()
        core = Core(sim, 0, DEFAULT_COSTS)
        with pytest.raises(SimulationError):
            core.execute(-1)

    def test_zero_utilization_at_time_zero(self):
        sim = Simulator()
        assert Core(sim, 0, DEFAULT_COSTS).utilization() == 0.0


class TestCpuSet:
    def test_indexing_and_len(self):
        cpus = CpuSet(Simulator(), 4, DEFAULT_COSTS)
        assert len(cpus) == 4
        assert cpus[2].core_id == 2

    def test_pinning(self):
        cpus = CpuSet(Simulator(), 2, DEFAULT_COSTS)
        owner = object()
        core = cpus.pin(owner, 1)
        assert core.core_id == 1
        assert cpus.pinned_core(owner) is core
        assert cpus.pinned_core(object()) is None

    def test_least_loaded(self):
        sim = Simulator()
        cpus = CpuSet(sim, 3, DEFAULT_COSTS)
        cpus[0].execute(100)
        cpus[1].execute(10)
        sim.run()
        assert cpus.least_loaded().core_id == 2

    def test_requires_one_core(self):
        with pytest.raises(SimulationError):
            CpuSet(Simulator(), 0, DEFAULT_COSTS)
