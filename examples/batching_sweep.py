#!/usr/bin/env python3
"""Burst-mode dataplane: sweep batch size and watch which per-packet
overheads amortize.

Ring-based planes pay fixed costs per *call* — a syscall crossing, an MMIO
doorbell, a DMA round trip — and batching spreads each over the whole
burst. The sidecar's dominant cost is physical data movement (coherence
traffic to its dedicated core), which is per-byte: batching cannot buy it
back. That asymmetry is §1's virtual-vs-physical taxonomy, measured.

Run:  python examples/batching_sweep.py         (~30 seconds)
"""

from repro.dataplanes import BypassDataplane, KernelPathDataplane, SidecarDataplane
from repro.experiments.common import fmt_table, run_burst_tx

BATCHES = (1, 4, 16, 64)
COLUMNS = [
    "plane", "batch", "goodput_gbps",
    "app_cpu_ns_per_pkt", "host_cpu_ns_per_pkt", "latency_us_mean",
]


def main() -> None:
    rows = []
    for plane_cls in (KernelPathDataplane, BypassDataplane, SidecarDataplane):
        for batch in BATCHES:
            row = run_burst_tx(plane_cls, 1_458, 256, batch)
            del row["movements"]
            rows.append(row)
    print(fmt_table(rows, columns=COLUMNS))

    print(
        "\nkernel and bypass per-packet CPU falls with batch size (the\n"
        "syscall crossing / doorbell / DMA setup amortize); the sidecar's\n"
        "stays flat — its cost is physical movement, charged per byte.\n"
        "Latency rises with batch size: packets wait for their burst.\n"
        "Full sweep across all five planes: python -m repro e12"
    )


if __name__ == "__main__":
    main()
