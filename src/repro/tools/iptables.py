"""iptables analogue.

Supported grammar (a practical subset)::

    -A|-I <CHAIN> [matches] -j ACCEPT|DROP      append / insert rule
    -D <CHAIN> <rulenum>                        delete by number (1-based)
    -L [CHAIN] [-v]                             list (with counters under -v)
    -F [CHAIN]                                  flush

Matches: ``-p tcp|udp``, ``-s <ip>``, ``-d <ip>``, ``--sport <n>``,
``--dport <n>``, ``-m owner`` with ``--uid-owner <uid|name>``,
``--cmd-owner <comm>``, ``--pid-owner <pid>``.
"""

from __future__ import annotations

import shlex
from typing import List, Optional

from ..errors import ToolError
from ..kernel.netfilter import ACCEPT, CHAIN_INPUT, CHAIN_OUTPUT, DROP, NetfilterRule
from ..net.addresses import IPv4Address
from ..net.headers import PROTO_TCP, PROTO_UDP
from ..dataplanes.base import Dataplane

_PROTOS = {"tcp": PROTO_TCP, "udp": PROTO_UDP}


class Iptables:
    """One instance per host; call it with a command line.

    Listing, deletion, and flushing resolve the rule table through the
    machine's :class:`~repro.interpose.PolicyEngine` registry (the point
    whose ``target`` is the kernel netfilter table), so tool output and
    engine state can never diverge; the point's ``resync``/``sync_counters``
    hooks trigger plane-specific recompilation and hardware counter pulls
    where the control plane wired them.
    """

    def __init__(self, dataplane: Dataplane, kernel):
        self.dataplane = dataplane
        self.kernel = kernel

    def _point(self):
        """The registered interposition point for the netfilter table."""
        machine = getattr(self.dataplane, "machine", None)
        engine = getattr(machine, "interpose", None)
        if engine is None:
            return None
        return engine.find_by_target(self.kernel.filters)

    def _table(self):
        """The authoritative rule table, via the engine registry."""
        point = self._point()
        return point.target if point is not None else self.kernel.filters

    def _resync(self) -> None:
        """Recompile after direct table surgery, where the plane needs it."""
        point = self._point()
        if point is not None and point.resync is not None:
            point.resync()

    def __call__(self, cmdline: str) -> str:
        argv = shlex.split(cmdline)
        if not argv:
            raise ToolError("iptables: empty command")
        op = argv[0]
        if op in ("-A", "-I"):
            return self._add(argv, insert=(op == "-I"))
        if op == "-D":
            return self._delete(argv)
        if op == "-L":
            return self._list(argv)
        if op == "-F":
            return self._flush(argv)
        raise ToolError(f"iptables: unknown operation {op!r}")

    # --- operations -------------------------------------------------------

    def _add(self, argv: List[str], insert: bool) -> str:
        rule = self._parse_rule(argv)
        if insert:
            # install_filter_rule appends; emulate insert via table surgery
            # on the registered table, then resync if the dataplane compiles.
            self._table().insert(rule)
            self._resync()
        else:
            self.dataplane.install_filter_rule(rule)
        return f"ok: {rule.describe()}"

    def _delete(self, argv: List[str]) -> str:
        if len(argv) != 3:
            raise ToolError("iptables: -D <CHAIN> <rulenum>")
        chain = self._chain(argv[1])
        try:
            index = int(argv[2]) - 1
        except ValueError as exc:
            raise ToolError(f"iptables: bad rule number {argv[2]!r}") from exc
        table = self._table()
        rules = table.rules(chain)
        if not 0 <= index < len(rules):
            raise ToolError(f"iptables: no rule {index + 1} in {chain}")
        table.delete(rules[index])
        self._resync()
        return f"ok: deleted {chain} rule {index + 1}"

    def _list(self, argv: List[str]) -> str:
        verbose = "-v" in argv
        chains = [a for a in argv[1:] if a != "-v"]
        chains = [self._chain(c) for c in chains] or [CHAIN_INPUT, CHAIN_OUTPUT]
        point = self._point()
        if verbose and point is not None and point.sync_counters is not None:
            point.sync_counters()
        table = self._table()
        out = []
        for chain in chains:
            out.append(f"Chain {chain} (policy ACCEPT)")
            for i, rule in enumerate(table.rules(chain), start=1):
                line = f"{i:4d}  {rule.describe()}"
                if verbose:
                    line += f"  [pkts={rule.packets} bytes={rule.bytes}]"
                out.append(line)
        return "\n".join(out)

    def _flush(self, argv: List[str]) -> str:
        chain = self._chain(argv[1]) if len(argv) > 1 else None
        self._table().flush(chain)
        self._resync()
        return f"ok: flushed {chain or 'all chains'}"

    # --- parsing ------------------------------------------------------------

    def _chain(self, name: str) -> str:
        if name not in (CHAIN_INPUT, CHAIN_OUTPUT):
            raise ToolError(f"iptables: unknown chain {name!r}")
        return name

    def _uid(self, token: str) -> int:
        if token.isdigit():
            return int(token)
        return self.kernel.users.by_name(token).uid

    def _parse_rule(self, argv: List[str]) -> NetfilterRule:
        chain = self._chain(argv[1])
        fields: dict = {"chain": chain}
        verdict: Optional[str] = None
        i = 2
        while i < len(argv):
            tok = argv[i]

            def need(n: int = 1) -> List[str]:
                if i + n > len(argv) - 1:
                    raise ToolError(f"iptables: {tok} needs an argument")
                return argv[i + 1 : i + 1 + n]

            if tok == "-p":
                (proto,) = need()
                if proto not in _PROTOS:
                    raise ToolError(f"iptables: unknown protocol {proto!r}")
                fields["proto"] = _PROTOS[proto]
                i += 2
            elif tok == "-s":
                fields["src_ip"] = IPv4Address.parse(need()[0])
                i += 2
            elif tok == "-d":
                fields["dst_ip"] = IPv4Address.parse(need()[0])
                i += 2
            elif tok == "--sport":
                fields["sport"] = int(need()[0])
                i += 2
            elif tok == "--dport":
                fields["dport"] = int(need()[0])
                i += 2
            elif tok == "-m":
                (module,) = need()
                if module != "owner":
                    raise ToolError(f"iptables: unsupported match module {module!r}")
                i += 2
            elif tok == "--uid-owner":
                fields["uid_owner"] = self._uid(need()[0])
                i += 2
            elif tok == "--cmd-owner":
                fields["cmd_owner"] = need()[0]
                i += 2
            elif tok == "--pid-owner":
                fields["pid_owner"] = int(need()[0])
                i += 2
            elif tok == "-j":
                (verdict,) = need()
                if verdict not in (ACCEPT, DROP):
                    raise ToolError(f"iptables: unknown target {verdict!r}")
                i += 2
            else:
                raise ToolError(f"iptables: unknown token {tok!r}")
        if verdict is None:
            raise ToolError("iptables: missing -j target")
        return NetfilterRule(verdict=verdict, **fields)
