"""The simulated packet: headers + synthetic payload length + metadata."""

from __future__ import annotations

from typing import Optional, Union

from ..errors import PacketError
from .addresses import BROADCAST_MAC, IPv4Address, MacAddress
from .flow import FiveTuple
from .headers import (
    ARP_OP_REQUEST,
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    PROTO_TCP,
    PROTO_UDP,
    ArpHeader,
    EthernetHeader,
    Ipv4Header,
    PacketMeta,
    TcpHeader,
    UdpHeader,
)

L4Header = Union[TcpHeader, UdpHeader]


class Packet:
    """One frame on the simulated wire.

    Payload bytes are synthetic (length only) — what experiments measure is
    movement and headers, not content — but ``to_bytes`` produces a valid
    wire image (zero-filled payload) so captures are real pcap files.

    Packets are the hottest allocation in the simulator, so the class is
    slotted and ``wire_len`` is computed once at construction (headers are
    frozen, so it can never change).
    """

    __slots__ = ("packet_id", "eth", "ipv4", "l4", "arp", "payload_len",
                 "meta", "wire_len")

    _ids = 0

    def __init__(
        self,
        eth: EthernetHeader,
        ipv4: Optional[Ipv4Header] = None,
        l4: Optional[L4Header] = None,
        arp: Optional[ArpHeader] = None,
        payload_len: int = 0,
    ):
        if payload_len < 0:
            raise PacketError(f"negative payload: {payload_len}")
        if arp is not None and ipv4 is not None:
            raise PacketError("packet cannot be both ARP and IPv4")
        if l4 is not None and ipv4 is None:
            raise PacketError("L4 header requires an IPv4 header")
        if arp is None and ipv4 is None:
            raise PacketError("packet needs an ARP or IPv4 header")
        Packet._ids += 1
        self.packet_id = Packet._ids
        self.eth = eth
        self.ipv4 = ipv4
        self.l4 = l4
        self.arp = arp
        self.payload_len = payload_len
        self.meta = PacketMeta()
        total = eth.wire_len
        if arp is not None:
            total += arp.wire_len
        else:
            total += ipv4.wire_len
            if l4 is not None:
                total += l4.wire_len
            total += payload_len
        self.wire_len = total

    # --- classification ------------------------------------------------------

    @property
    def is_arp(self) -> bool:
        return self.arp is not None

    @property
    def is_tcp(self) -> bool:
        return isinstance(self.l4, TcpHeader)

    @property
    def is_udp(self) -> bool:
        return isinstance(self.l4, UdpHeader)

    @property
    def five_tuple(self) -> Optional[FiveTuple]:
        if self.ipv4 is None or self.l4 is None:
            return None
        return FiveTuple(
            proto=self.ipv4.proto,
            src_ip=self.ipv4.src,
            sport=self.l4.sport,
            dst_ip=self.ipv4.dst,
            dport=self.l4.dport,
        )

    def to_bytes(self) -> bytes:
        """Wire image with a zero-filled payload."""
        out = self.eth.to_bytes()
        if self.arp is not None:
            return out + self.arp.to_bytes()
        assert self.ipv4 is not None
        out += self.ipv4.to_bytes()
        if self.l4 is not None:
            out += self.l4.to_bytes()
        return out + b"\x00" * self.payload_len

    def summary(self) -> str:
        """One-line human description (tcpdump-style)."""
        if self.arp is not None:
            kind = "request" if self.arp.op == ARP_OP_REQUEST else "reply"
            return (
                f"ARP {kind} sender {self.arp.sender_ip} ({self.arp.sender_mac}) "
                f"target {self.arp.target_ip}"
            )
        assert self.ipv4 is not None
        proto = {PROTO_TCP: "TCP", PROTO_UDP: "UDP"}.get(self.ipv4.proto, str(self.ipv4.proto))
        if self.l4 is not None:
            return (
                f"{proto} {self.ipv4.src}:{self.l4.sport} > "
                f"{self.ipv4.dst}:{self.l4.dport} len {self.wire_len}"
            )
        return f"IP {self.ipv4.src} > {self.ipv4.dst} proto {proto} len {self.wire_len}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Packet #{self.packet_id} {self.summary()}>"


def make_udp(
    src_mac: MacAddress,
    dst_mac: MacAddress,
    src_ip: IPv4Address,
    dst_ip: IPv4Address,
    sport: int,
    dport: int,
    payload_len: int = 0,
) -> Packet:
    """Convenience UDP datagram builder."""
    return Packet(
        eth=EthernetHeader(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4),
        ipv4=Ipv4Header(
            src=src_ip, dst=dst_ip, proto=PROTO_UDP,
            payload_len=payload_len + UdpHeader(sport, dport).wire_len,
        ),
        l4=UdpHeader(sport=sport, dport=dport, payload_len=payload_len),
        payload_len=payload_len,
    )


def make_tcp(
    src_mac: MacAddress,
    dst_mac: MacAddress,
    src_ip: IPv4Address,
    dst_ip: IPv4Address,
    sport: int,
    dport: int,
    payload_len: int = 0,
    flags: Optional[int] = None,
    seq: int = 0,
    ack: int = 0,
) -> Packet:
    """Convenience TCP segment builder."""
    tcp_kwargs = {"sport": sport, "dport": dport, "seq": seq, "ack": ack}
    if flags is not None:
        tcp_kwargs["flags"] = flags
    tcp = TcpHeader(**tcp_kwargs)
    return Packet(
        eth=EthernetHeader(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4),
        ipv4=Ipv4Header(
            src=src_ip, dst=dst_ip, proto=PROTO_TCP,
            payload_len=payload_len + tcp.wire_len,
        ),
        l4=tcp,
        payload_len=payload_len,
    )


def make_arp_request(
    sender_mac: MacAddress, sender_ip: IPv4Address, target_ip: IPv4Address
) -> Packet:
    """Broadcast who-has ARP request."""
    return Packet(
        eth=EthernetHeader(dst=BROADCAST_MAC, src=sender_mac, ethertype=ETHERTYPE_ARP),
        arp=ArpHeader(op=ARP_OP_REQUEST, sender_mac=sender_mac, sender_ip=sender_ip,
                      target_ip=target_ip),
    )
