"""Benchmark-suite configuration.

Each benchmark runs its experiment once (rounds=1) — these are simulation
replays, not microbenchmarks — and prints the table the corresponding
figure/claim in the paper predicts. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a harness exactly once under the benchmark timer and return its
    result rows."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
