"""Exception hierarchy for the KOPI/Norman reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SimulationError(ReproError):
    """The simulation engine was used incorrectly (e.g. scheduling in the past)."""


class ConfigError(ReproError):
    """A cost-model or topology parameter is invalid."""


class PacketError(ReproError):
    """Malformed packet or header field out of range."""


class AddressError(PacketError):
    """Malformed MAC or IPv4 address."""


class KernelError(ReproError):
    """Generic kernel-substrate failure."""


class PermissionDenied(KernelError):
    """Caller lacks the privilege for the requested operation."""


class AddressInUse(KernelError):
    """Port or address already bound (EADDRINUSE)."""


class ConnectionRefused(KernelError):
    """No listener on the destination port (ECONNREFUSED)."""


class NotConnected(KernelError):
    """Operation requires an established connection (ENOTCONN)."""


class WouldBlock(KernelError):
    """Non-blocking operation cannot complete immediately (EWOULDBLOCK)."""


class EndpointClosed(KernelError):
    """Operation on a closed endpoint (EBADF)."""


class InvalidSyscall(KernelError):
    """Syscall used with invalid arguments (EINVAL)."""


class UnsupportedOperation(ReproError):
    """The selected dataplane cannot implement the requested policy or tool.

    This is the error the capability matrix (experiment E3) is built on: a
    dataplane that cannot, e.g., match on process owner raises this instead of
    silently not enforcing.
    """


class NicError(ReproError):
    """Generic NIC failure."""


class RingFull(NicError):
    """Descriptor ring has no free slot."""


class RingEmpty(NicError):
    """Descriptor ring has no completed entry to consume."""


class NicResourceExhausted(NicError):
    """On-NIC SRAM / table capacity exceeded (experiment E9)."""


class ReconfigurationUnsupported(NicError):
    """Fixed-function hardware cannot be reprogrammed (experiment E10)."""


class OverlayError(ReproError):
    """Overlay program failed to assemble, verify, or execute."""


class VerifierError(OverlayError):
    """Overlay program rejected by the static verifier."""


class AssemblerError(OverlayError):
    """Overlay assembly text is malformed."""


class PolicyError(ReproError):
    """A policy object is inconsistent or cannot be compiled."""


class ToolError(ReproError):
    """An admin tool (iptables/tc/tcpdump/...) was invoked incorrectly."""
