"""Property-based tests: qdisc conservation/fairness, ring invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.host import MemorySystem
from repro.kernel import DrrQdisc, PfifoQdisc, PrioQdisc, TbfQdisc
from repro.net import IPv4Address, MacAddress, make_udp
from repro.nic import DescriptorRing

MAC_A, MAC_B = MacAddress.from_index(1), MacAddress.from_index(2)
IP_A, IP_B = IPv4Address.parse("10.0.0.1"), IPv4Address.parse("10.0.0.2")


def pkt(size=958):
    return make_udp(MAC_A, MAC_B, IP_A, IP_B, 1000, 2000, size)


class TestQdiscConservation:
    """No qdisc may create, duplicate, or silently destroy packets:
    enqueued == dequeued + still_queued + dropped."""

    @given(sizes=st.lists(st.integers(1, 1400), min_size=1, max_size=100),
           limit=st.integers(1, 50))
    def test_pfifo_conserves(self, sizes, limit):
        q = PfifoQdisc(limit=limit)
        accepted = sum(1 for s in sizes if q.enqueue(pkt(s)))
        drained = 0
        while q.dequeue(0):
            drained += 1
        assert accepted == drained
        assert accepted + q.dropped == len(sizes)

    @given(sizes=st.lists(st.integers(1, 1400), min_size=1, max_size=60))
    def test_tbf_conserves_and_never_reorders(self, sizes):
        q = TbfQdisc(rate_bps=units.GBPS, burst_bytes=2_000)
        packets = [pkt(s) for s in sizes]
        accepted = [p for p in packets if q.enqueue(p)]
        drained = []
        now = 0
        for _ in range(10 * len(sizes) + 10):
            got = q.dequeue(now)
            if got is None:
                nxt = q.next_ready_ns(now)
                if nxt is None:
                    break
                now = max(nxt, now + 1)
                continue
            drained.append(got)
        assert drained == accepted  # FIFO order, nothing lost or invented

    @given(
        counts=st.tuples(st.integers(0, 40), st.integers(0, 40)),
        weights=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    )
    def test_drr_conserves_across_classes(self, counts, weights):
        q = DrrQdisc(weights={"a": weights[0], "b": weights[1]}, limit=100)
        for _ in range(counts[0]):
            q.enqueue(pkt(), "a")
        for _ in range(counts[1]):
            q.enqueue(pkt(), "b")
        drained = 0
        while q.dequeue(0):
            drained += 1
        assert drained == counts[0] + counts[1]
        assert q.backlog == 0

    @given(weights=st.tuples(st.integers(1, 6), st.integers(1, 6)))
    @settings(max_examples=30)
    def test_drr_share_tracks_weights_under_backlog(self, weights):
        wa, wb = weights
        q = DrrQdisc(weights={"a": wa, "b": wb})
        for _ in range(400):
            q.enqueue(pkt(), "a")
            q.enqueue(pkt(), "b")
        for _ in range(150):
            assert q.dequeue(0) is not None
        expected = wa / (wa + wb)
        assert abs(q.share_of("a") - expected) < 0.12

    @given(bands=st.lists(st.integers(0, 2), min_size=1, max_size=60))
    def test_prio_always_serves_lowest_band_first(self, bands):
        q = PrioQdisc(bands=3)
        tagged = []
        for band in bands:
            p = pkt()
            tagged.append((band, p))
            q.enqueue(p, str(band))
        out_bands = []
        while True:
            p = q.dequeue(0)
            if p is None:
                break
            band = next(b for b, x in tagged if x is p)
            out_bands.append(band)
        # At any point, a dequeued band is never higher-numbered than a
        # band still waiting from before it... simpler invariant: the output
        # is each band's packets in FIFO order, bands sorted per drain loop.
        assert sorted(out_bands) == sorted(bands)
        assert out_bands == sorted(bands, key=lambda b: b)  # strict priority drain


class TestRingProperties:
    @given(ops=st.lists(st.sampled_from(["post", "consume"]), min_size=1, max_size=200),
           entries=st.integers(1, 16))
    def test_ring_never_overfills_and_indices_track(self, ops, entries):
        mem = MemorySystem(total_bytes=1 * units.MB)
        ring = DescriptorRing(entries, mem.alloc_pinned(1024, owner="t"), "r")
        model = []
        for op in ops:
            if op == "post":
                if ring.try_post(len(model)):
                    model.append(len(model))
            else:
                got = ring.try_consume()
                if model:
                    assert got == model.pop(0)
                else:
                    assert got is None
            assert 0 <= ring.occupancy <= entries
            assert ring.occupancy == len(model)
            assert ring.head - ring.tail == len(model)

    @given(entries=st.integers(1, 8), n=st.integers(1, 50))
    def test_fifo_order_preserved(self, entries, n):
        mem = MemorySystem(total_bytes=1 * units.MB)
        ring = DescriptorRing(entries, mem.alloc_pinned(1024, owner="t"), "r")
        seen = []
        produced = 0
        while produced < n:
            while produced < n and ring.try_post(produced):
                produced += 1
            while not ring.is_empty:
                seen.append(ring.consume())
        assert seen == list(range(n))
