"""Bob's Postgres, Charlie's MySQL, and the misconfigured instance that
binds the wrong port — the §2 port-partitioning cast."""

from __future__ import annotations

from typing import Generator

from ..dataplanes.testbed import Testbed
from ..trace import STAGE_APP
from .base import App

POSTGRES_PORT = 5432
MYSQL_PORT = 3306


class DatabaseServer(App):
    """Serves queries on its well-known port: recv, think, reply."""

    def __init__(
        self,
        testbed: Testbed,
        comm: str,
        user: str,
        port: int,
        query_work_ns: int = 5_000,
        reply_len: int = 512,
        **kwargs,
    ):
        super().__init__(testbed, comm=comm, user=user, port=port, **kwargs)
        self.query_work_ns = query_work_ns
        self.reply_len = reply_len
        self.queries = 0

    def run(self) -> Generator:
        core = self.tb.machine.cpus[self.proc.core_id]
        while True:
            _size, src_ip, sport = yield self.ep.recv(blocking=True)
            yield core.execute(
                self.tb.machine.tracer.loose(
                    STAGE_APP, self.query_work_ns, label="query"
                ),
                "query",
            )
            yield self.ep.send(self.reply_len, dst=(src_ip, sport))
            self.queries += 1


class MisconfiguredDatabase(App):
    """Charlie's MySQL with a typo in its config: it binds 5432.

    Under kernel bypass nothing stops it and it silently absorbs Postgres
    traffic (E5 counts those deliveries); under the kernel path or KOPI the
    bind itself fails or the traffic is filtered.
    """

    def __init__(self, testbed: Testbed, user: str = "charlie", port: int = POSTGRES_PORT,
                 **kwargs):
        super().__init__(testbed, comm="mysql", user=user, port=port, **kwargs)
        self.stolen = 0

    def run(self) -> Generator:
        while True:
            yield self.ep.recv(blocking=True)
            self.stolen += 1
