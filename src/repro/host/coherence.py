"""Cross-core coherence traffic accounting.

"Physical movement" in the paper's taxonomy: routing packets through an
interposition layer on another core (IX, Snap) forces modified cache lines to
migrate between cores. This fabric charges that cost and counts it, so the E2
experiment can report both nanoseconds and lines moved.
"""

from __future__ import annotations

from typing import Optional

from ..config import CostModel
from ..errors import SimulationError
from ..sim import MetricSet
from .copies import LAYER_COHERENCE, CopyLedger


class CoherenceFabric:
    """Charges and counts cache-line transfers between cores."""

    def __init__(self, costs: CostModel, ledger: Optional[CopyLedger] = None):
        self.costs = costs
        self.metrics = MetricSet("coherence")
        self.ledger = ledger if ledger is not None else CopyLedger()

    def transfer_cost_ns(self, nbytes: int, src_core: int, dst_core: int) -> int:
        """Cost of moving ``nbytes`` of modified data from ``src_core``'s
        cache to ``dst_core``'s. Same-core transfers are free."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        if src_core == dst_core or nbytes == 0:
            return 0
        line = self.costs.cache_line_bytes
        lines = -(-nbytes // line)
        self.metrics.counter("lines_moved").inc(lines)
        self.metrics.counter("transfers").inc()
        cost = lines * self.costs.coherence_line_ns
        # Physical movement is still movement: the sidecar's cross-core
        # line migration lands in the same ledger as the kernel's copies.
        self.ledger.charge(LAYER_COHERENCE, nbytes, cost)
        return cost

    @property
    def lines_moved(self) -> int:
        return self.metrics.counter("lines_moved").value
