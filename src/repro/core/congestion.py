"""On-NIC congestion control (§4.2).

The dataplane's scheduler queue is the earliest congestion signal a host
has: when it backs up, the aggregate offered load exceeds the wire. The
manager reacts PicNIC-style, entirely on the NIC:

* **backpressure** — when a connection's packet meets a deep scheduler
  backlog (or is dropped), halve that connection's pacing rate
  (multiplicative decrease, with a per-connection cooldown so one burst
  triggers one decrease);
* **recovery** — a periodic tick adds back bandwidth (additive increase)
  until the connection is unpaced again.

Pacing is enforanced by the TX ring drain engine: a paced connection's
descriptors are fetched no faster than its rate, so excess load waits in
the application's ring (bounded, visible via `ss`) instead of being
dropped at the scheduler.
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import units
from ..config import CostModel
from ..errors import KernelError
from ..sim import MetricSet, Simulator
from .connection import NormanConnection


class LocalCongestionManager:
    """AIMD pacing of connections against local egress congestion."""

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel,
        wire_rate_bps: Optional[int] = None,
        backlog_threshold: int = 64,
        min_rate_bps: int = 10 * units.MBPS,
        increase_bps: int = 100 * units.MBPS,
        tick_ns: int = 100 * units.US,
        cooldown_ns: int = 50 * units.US,
    ):
        if backlog_threshold < 1:
            raise KernelError(f"backlog threshold must be >= 1: {backlog_threshold}")
        if min_rate_bps < 1 or increase_bps < 1:
            raise KernelError("rates must be positive")
        self.sim = sim
        self.costs = costs
        self.wire_rate_bps = wire_rate_bps or costs.nic_line_rate_bps
        self.backlog_threshold = backlog_threshold
        self.min_rate_bps = min_rate_bps
        self.increase_bps = increase_bps
        self.tick_ns = tick_ns
        self.cooldown_ns = cooldown_ns
        self.metrics = MetricSet("nic_cc")
        self._last_decrease: Dict[int, int] = {}
        self._ticking = False

    # --- signals from the NIC -------------------------------------------

    def on_backpressure(self, conn: NormanConnection, backlog: int, dropped: bool) -> None:
        """Called by the TX pipeline when ``conn``'s packet hit a deep
        scheduler queue (or was dropped there)."""
        if not dropped and backlog <= self.backlog_threshold:
            return
        now = self.sim.now
        if now - self._last_decrease.get(conn.conn_id, -self.cooldown_ns) < self.cooldown_ns:
            return
        self._last_decrease[conn.conn_id] = now
        if conn.rate_bps is None:
            # First signal: the NIC knows its own drain rate — clamp
            # straight to the wire instead of halving down from line rate
            # (a 100 Gbps ring feeding a 100 Mbps uplink would otherwise
            # overflow the scheduler long before AIMD converges).
            conn.rate_bps = max(self.min_rate_bps, self.wire_rate_bps)
        else:
            conn.rate_bps = max(self.min_rate_bps, conn.rate_bps // 2)
        self.metrics.counter("decreases").inc()
        self._arm()

    # --- recovery ----------------------------------------------------------

    def _arm(self) -> None:
        if self._ticking:
            return
        self._ticking = True
        self.sim.after(self.tick_ns, self._tick)

    def _tick(self) -> None:
        self._ticking = False
        paced = [cid for cid in self._last_decrease]
        still_paced = False
        for conn_id in paced:
            conn = self._resolve(conn_id)
            if conn is None or conn.closed or conn.rate_bps is None:
                self._last_decrease.pop(conn_id, None)
                continue
            conn.rate_bps = conn.rate_bps + self.increase_bps
            self.metrics.counter("increases").inc()
            if conn.rate_bps >= self.costs.nic_line_rate_bps:  # noqa: SIM114
                # Back at line rate: pacing is a no-op, stop tracking.
                conn.rate_bps = None  # fully recovered: unpaced
                self._last_decrease.pop(conn_id, None)
            else:
                still_paced = True
        if still_paced:
            self._arm()

    # Wired by the control plane so ticks can see live connections.
    _resolve = staticmethod(lambda _cid: None)  # type: ignore[assignment]

    def bind_resolver(self, resolver) -> None:
        self._resolve = resolver  # type: ignore[assignment]

    def paced_connections(self) -> int:
        return len(self._last_decrease)
