"""Capstone integration test: all four §2 scenarios on ONE Norman host,
sequentially, with state carried throughout — Alice's day as a system test.

Morning: Bob's postgres and Charlie's mysql come up; the port policy goes
in. Midday: someone's app floods ARP; Alice finds it with one tcpdump.
Afternoon: Bob and Charlie start the game; Alice shapes it. Evening: a
worker sleeps between requests without burning its core. All on the same
testbed instance, interleaved with live traffic.
"""

import pytest

from repro import units
from repro.core import NormanOS
from repro.dataplanes import Testbed
from repro.dataplanes.testbed import PEER_IP
from repro.errors import AddressInUse
from repro.net import PROTO_UDP
from repro.sim import SimProcess
from repro.apps import (
    ArpFlooder,
    BlockingWorker,
    BulkSender,
    DatabaseServer,
    GameClient,
)
from repro.tools import Iptables, Netstat, Ss, Tc, Tcpdump


@pytest.fixture(scope="class")
def day():
    """One long-lived testbed shared by the whole scenario sequence."""
    tb = Testbed(NormanOS, link_rate_bps=2 * units.GBPS)
    tb.user("bob")
    tb.user("charlie")
    return {"tb": tb, "apps": {}}


class TestAlicesDay:
    def test_0900_databases_and_port_policy(self, day):
        tb = day["tb"]
        ipt = Iptables(tb.dataplane, tb.kernel)
        ipt("-A INPUT -p udp --dport 5432 -m owner --uid-owner bob "
            "--cmd-owner postgres -j ACCEPT")
        ipt("-A INPUT -p udp --dport 5432 -j DROP")
        day["apps"]["postgres"] = DatabaseServer(
            tb, comm="postgres", user="bob", port=5432, core_id=1
        ).start()
        # Charlie's misconfigured instance cannot even bind.
        with pytest.raises(AddressInUse):
            DatabaseServer(tb, comm="mysql", user="charlie", port=5432, core_id=2)
        day["apps"]["mysql"] = DatabaseServer(
            tb, comm="mysql", user="charlie", port=3306, core_id=2
        ).start()
        tb.run_all()
        # Clients query both; both serve.
        for i in range(5):
            tb.sim.after(20_000 * (i + 1), tb.peer.send_udp, 800 + i, 5432, 128)
            tb.sim.after(20_000 * (i + 1) + 7_000, tb.peer.send_udp, 900 + i, 3306, 128)
        tb.run(until=tb.sim.now + 2 * units.MS)
        assert day["apps"]["postgres"].queries == 5
        assert day["apps"]["mysql"].queries == 5
        assert "postgres" in Netstat(tb.kernel)()

    def test_1200_arp_flood_found_in_one_capture(self, day):
        tb = day["tb"]
        dump = Tcpdump(tb.dataplane)
        session = dump.start("arp")
        flooder = ArpFlooder(tb, user="charlie", count=15, core_id=3,
                             comm="cachesrv").start()
        tb.run(until=tb.sim.now + 2 * units.MS)
        owners = {tb.dataplane.attribution_of(p) for p in session.packets}
        assert len(owners) == 1
        pid, uid, comm = next(iter(owners))
        assert comm == "cachesrv"
        assert uid == tb.user("charlie").uid
        session.stop()
        flooder.stop()
        # The databases kept serving through the flood.
        tb.peer.send_udp(850, 5432, 128)
        tb.run(until=tb.sim.now + 1 * units.MS)
        assert day["apps"]["postgres"].queries == 6

    def test_1500_game_shaped_without_hurting_work(self, day):
        tb = day["tb"]
        tb.kernel.cgroups.create("/games")
        tb.kernel.cgroups.create("/work")
        game = GameClient(tb, user="bob", core_id=4, payload_len=1_200,
                          packets_per_session=100_000, sessions=1, seed=17)
        work = BulkSender(tb, comm="builder", user="charlie", core_id=5,
                          payload_len=1_200, count=None)
        tb.kernel.cgroups.assign(game.proc, "/games")
        tb.kernel.cgroups.assign(work.proc, "/work")
        Tc(tb.dataplane, tb.kernel)("qdisc replace dev nic0 root wfq /games:1 /work:3")
        tb.run_all()
        start = tb.sim.now
        base_game = sum(tb.peer.bytes_to_dport(p) for p in set(game.ports_used))
        base_work = tb.peer.bytes_to_dport(9_000)
        game.start()
        work.start()
        tb.run(until=start + 20 * units.MS)
        game.stop()
        work.stop()
        game_bytes = sum(tb.peer.bytes_to_dport(p) for p in set(game.ports_used)) - base_game
        work_bytes = tb.peer.bytes_to_dport(9_000) - base_work
        share = work_bytes / (game_bytes + work_bytes)
        assert share == pytest.approx(0.75, abs=0.08)
        day["apps"]["game"] = game

    def test_1800_worker_sleeps_between_requests(self, day):
        tb = day["tb"]
        worker = BlockingWorker(tb, port=7500, comm="worker", user="bob", core_id=6)
        worker.start()
        start = tb.sim.now
        busy0 = tb.machine.cpus[6].busy_ns
        for i in range(5):
            tb.sim.after(500_000 * (i + 1), tb.peer.send_udp, 555, 7500, 100)
        tb.run(until=start + 4 * units.MS)
        worker.stop()
        tb.run_all()
        assert worker.served == 5
        burned = tb.machine.cpus[6].busy_ns - busy0
        assert burned < 200_000  # ~4 ms window, core essentially idle

    def test_2100_ss_shows_the_whole_day(self, day):
        tb = day["tb"]
        out = Ss(tb.dataplane, tb.kernel)()
        assert "postgres" in out
        assert "mysql" in out
        assert "fast" in out
        # Nothing fell back to the software path all day.
        assert Ss(tb.dataplane, tb.kernel).fallback_count() == 0
