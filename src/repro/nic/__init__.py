"""NIC models.

:class:`BasicNic` is a conventional DMA NIC (rings, RSS, fixed pipeline).
:class:`FixedFunctionNic` adds a small non-programmable filter table — the
"fixed function offload" strawman §3 argues cannot track policy evolution.
The SmartNIC submodule models the programmable device KOPI needs: scarce
SRAM and an FPGA fabric whose behaviour changes either by full bitstream
(seconds) or by overlay program load (microseconds).
"""

from .base import BasicNic, NicQueue
from .fixed_function import FixedFunctionNic
from .notification import Notification, NotificationQueue
from .rings import DescriptorRing, RingPair
from .smartnic import FpgaFabric, SramAllocator
from .steering import SteeringTable

__all__ = [
    "BasicNic",
    "DescriptorRing",
    "FixedFunctionNic",
    "FpgaFabric",
    "NicQueue",
    "Notification",
    "NotificationQueue",
    "RingPair",
    "SramAllocator",
    "SteeringTable",
]
