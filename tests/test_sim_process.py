"""Generator-process semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim import Signal, SimProcess, Simulator
from repro.sim.process import ProcessInterrupted


class TestSleeping:
    def test_integer_yield_sleeps(self):
        sim = Simulator()
        trace = []

        def worker():
            trace.append(sim.now)
            yield 100
            trace.append(sim.now)
            yield 50
            trace.append(sim.now)

        SimProcess(sim, worker())
        sim.run()
        assert trace == [0, 100, 150]

    def test_negative_sleep_fails_process(self):
        sim = Simulator()

        def worker():
            yield -5

        proc = SimProcess(sim, worker())
        proc.done.add_callback(lambda s: None)  # mark as awaited
        sim.run()
        assert proc.done.failed


class TestSignals:
    def test_signal_value_sent_into_generator(self):
        sim = Simulator()
        ready = Signal("ready")
        got = []

        def worker():
            value = yield ready
            got.append(value)

        SimProcess(sim, worker())
        sim.after(10, ready.succeed, "payload")
        sim.run()
        assert got == ["payload"]

    def test_failed_signal_thrown_into_generator(self):
        sim = Simulator()
        doomed = Signal()
        caught = []

        def worker():
            try:
                yield doomed
            except ValueError as exc:
                caught.append(str(exc))

        SimProcess(sim, worker())
        sim.after(5, doomed.fail, ValueError("io error"))
        sim.run()
        assert caught == ["io error"]


class TestComposition:
    def test_waiting_on_child_process_gets_return_value(self):
        sim = Simulator()
        results = []

        def child():
            yield 30
            return "child-result"

        def parent():
            value = yield SimProcess(sim, child())
            results.append((sim.now, value))

        SimProcess(sim, parent())
        sim.run()
        assert results == [(30, "child-result")]

    def test_unhandled_exception_propagates_when_unawaited(self):
        sim = Simulator()

        def worker():
            yield 1
            raise RuntimeError("unobserved crash")

        SimProcess(sim, worker())
        with pytest.raises(RuntimeError, match="unobserved crash"):
            sim.run()

    def test_awaited_exception_is_delivered_not_raised(self):
        sim = Simulator()
        observed = []

        def worker():
            yield 1
            raise RuntimeError("observed crash")

        proc = SimProcess(sim, worker())
        proc.done.add_callback(lambda s: observed.append(type(s.exception)))
        sim.run()
        assert observed == [RuntimeError]


class TestInterrupt:
    def test_interrupt_wakes_blocked_process(self):
        sim = Simulator()
        never = Signal("never")
        trace = []

        def worker():
            try:
                yield never
            except ProcessInterrupted:
                trace.append(sim.now)

        proc = SimProcess(sim, worker())
        sim.after(77, proc.interrupt)
        sim.run()
        assert trace == [77]

    def test_interrupting_finished_process_is_noop(self):
        sim = Simulator()

        def worker():
            yield 1

        proc = SimProcess(sim, worker())
        sim.run()
        proc.interrupt()
        sim.run()

    def test_bad_yield_type_fails(self):
        sim = Simulator()

        def worker():
            yield "not a yieldable"

        proc = SimProcess(sim, worker())
        proc.done.add_callback(lambda s: None)
        sim.run()
        assert proc.done.failed
        assert isinstance(proc.done.exception, SimulationError)

    def test_requires_generator(self):
        sim = Simulator()

        def not_a_generator():
            return 42

        with pytest.raises(SimulationError):
            SimProcess(sim, not_a_generator())  # type: ignore[arg-type]
