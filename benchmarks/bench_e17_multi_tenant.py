"""E17 — multi-tenant isolation bench: the per-tenant scheduler must hold
the noisy neighbor's interference to the pinned bound.

Replays the three-leg noisy-neighbor experiment (victims solo, contended
against a closed-loop hog with FIFO egress, contended with the per-tenant
DRR scheduler + quotas) at a CI-sized tenant count and asserts the
isolation contract:

* with isolation ON, pooled victim p99 stays within ``ISOLATION_FACTOR``
  (2x) of the solo baseline while the hog still carries the bulk of the
  delivered packets;
* with isolation OFF, the same contention degrades victim p99 by far
  more than the bound (typically orders of magnitude — the off leg also
  drops most victim traffic on the saturated FIFO);
* the E16 stage spine agrees about *where* the interference lands
  (qdisc queue-wait) and that the scheduler removes that stage.

Writes ``e17_multi_tenant.json`` next to the earlier artifacts and the
consolidated ``BENCH_PR8.json`` (events fired + wall seconds for the
E8/E15/E21/E17 replays). The consolidated pass doubles as a regression
gate: if the exact-mode E8 replay's events/s dropped more than 10%
against the ``BENCH_PR7.json`` baseline, the tenant threading leaked
cost into the default (knobs-off) path — fail. (Skipped when no
baseline exists.)
"""

import gc
import json
import time
from pathlib import Path

from repro.experiments import e8_connection_scaling as e8
from repro.experiments.common import fmt_table
from repro.experiments.e15_flow_fastpath import run_e15_planes
from repro.experiments.e17_multi_tenant import (
    ISOLATION_FACTOR,
    run_e17,
    tenant_pressure_rows,
)
from repro.experiments.e21_fidelity_crossover import (
    run_parity as run_e21_parity,
)
from repro.sim import Simulator

ARTIFACT = Path(__file__).parent / "artifacts" / "e17_multi_tenant.json"
CONSOLIDATED = Path(__file__).parent / "artifacts" / "BENCH_PR8.json"
PR7_BASELINE = Path(__file__).parent / "artifacts" / "BENCH_PR7.json"

#: CI-sized tenant count: large enough that the off leg saturates and the
#: DRR round spans dozens of classes, small enough to replay in seconds.
N_VICTIMS = 40
VICTIM_COUNT = 25

MAX_E8_REGRESSION = 0.10


def _metered(fn, *args, **kwargs):
    """Run ``fn`` and return (result, total events fired across every
    simulator it built, wall seconds) — bench-local instrumentation."""
    sims = []
    orig_init = Simulator.__init__

    def _tracking_init(self):
        orig_init(self)
        sims.append(self)

    gc.collect()
    Simulator.__init__ = _tracking_init
    t0 = time.perf_counter()
    try:
        result = fn(*args, **kwargs)
    finally:
        Simulator.__init__ = orig_init
    seconds = time.perf_counter() - t0
    return result, sum(s.events_fired for s in sims), seconds


def _e17():
    return run_e17(n_victims=N_VICTIMS, victim_count=VICTIM_COUNT)


def test_e17_multi_tenant(once):
    result = once(_e17)
    h = result["headline"]

    print("\n" + fmt_table(result["rows"]))
    print("\n" + fmt_table(result["stage_rows"]))
    print("\n" + fmt_table(tenant_pressure_rows(
        result["legs"]["contended_on"])[:8]))
    print(f"\nheadline: solo p99 {h['solo_p99_us']:.1f}us, "
          f"off {h['off_p99_x_solo']:.0f}x solo, "
          f"on {h['on_p99_x_solo']:.2f}x solo "
          f"(bound {ISOLATION_FACTOR}x), "
          f"hog share {h['hog_share_on']:.0%}, "
          f"interference in {h['interference_stage']!r}")

    # Acceptance: the isolation contract, both directions. run_e17
    # asserts these itself; restate the headline bounds here so a bench
    # regression reads as numbers, not a deep traceback.
    assert h["on_p99_x_solo"] <= ISOLATION_FACTOR, h
    assert h["off_p99_x_solo"] > ISOLATION_FACTOR, h
    assert h["hog_share_on"] > 0.5, h
    assert h["interference_stage"] == "qdisc", h

    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(
        json.dumps(
            {"headline": h, "rows": result["rows"],
             "stages": result["stage_rows"],
             "pressure": tenant_pressure_rows(
                 result["legs"]["contended_on"])},
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {ARTIFACT}")


def test_bench_pr8_consolidated(once):
    """One artifact comparing the replay cost of the suite's heavy
    experiments on this tree — and the regression gate proving the
    tenant threading costs the exact (knobs-off) path nothing."""
    entries = {}
    _, ev, s = _metered(e8.run_e8, sweep=(256, 1_024), packets_per_point=4_096)
    entries["e8"] = {"events": ev, "seconds": s}
    _, ev, s = _metered(run_e15_planes, count=192)
    entries["e15"] = {"events": ev, "seconds": s}
    _, ev, s = _metered(run_e21_parity)
    entries["e21"] = {"events": ev, "seconds": s}
    result, ev, s = _metered(once, _e17)
    h = result["headline"]
    entries["e17"] = {
        "events": ev, "seconds": s,
        "on_p99_x_solo": h["on_p99_x_solo"],
        "off_p99_x_solo": h["off_p99_x_solo"],
        "hog_share_on": h["hog_share_on"],
    }

    CONSOLIDATED.parent.mkdir(parents=True, exist_ok=True)
    CONSOLIDATED.write_text(json.dumps(entries, indent=2) + "\n")
    for name, e in entries.items():
        print(f"{name}: {e['events']} events in {e['seconds']:.2f}s")
    print(f"wrote {CONSOLIDATED}")

    # Exact-mode regression gate: E8 runs with every tenant knob off, so
    # its events/s measures the default path the threading must not slow.
    if not PR7_BASELINE.exists():
        print(f"{PR7_BASELINE.name} absent; skipping exact-mode "
              f"E8 regression check")
        return
    base = json.loads(PR7_BASELINE.read_text()).get("e8")
    if not base or not base.get("seconds"):
        print(f"{PR7_BASELINE.name} has no usable e8 entry; skipping")
        return
    base_rate = base["events"] / base["seconds"]
    cur_rate = entries["e8"]["events"] / entries["e8"]["seconds"]
    drop = 1.0 - cur_rate / base_rate
    print(f"e8 exact-mode: {cur_rate:,.0f} events/s vs baseline "
          f"{base_rate:,.0f} ({drop:+.1%} drop)")
    assert drop <= MAX_E8_REGRESSION, (
        f"exact-mode E8 replay regressed {drop:.1%} "
        f"(> {MAX_E8_REGRESSION:.0%}) vs {PR7_BASELINE.name}"
    )
