"""E23 — rack-scale fast-forward bench: end-to-end fluid epochs across
the switch hop must stay exact and beat demote-at-wire decisively.

Replays both legs of the rack fast-forward experiment and asserts the
acceptance shape:

* Parity: exact and cross-machine-fluid runs of the *identical*
  A→switch→B schedule agree — every counted observable (both hosts' NIC
  and verdict-cache counters, doorbell MMIO writes, both copy ledgers,
  qdisc transit, switch frames/floods, both links' packet and byte
  meters) matches exactly, modeled CPU time and every per-host trace
  stage land within the pinned ``ff_tolerance``, per-host span
  conservation agrees between legs, and every connection actually bound
  end-to-end.
* Crossover: at 10k+ cross-host connections the end-to-end fluid engine
  runs >= 5x faster (packets per wall-second) than the previous best —
  the demote-at-wire engine (per-host fast-forward with
  ``ff_cross_machine`` off).

Writes ``e23_rack_fastforward.json`` (including the cross-host micro-opt
before/after note) and the consolidated ``BENCH_PR9.json``; the
consolidated pass gates the exact-mode E8 replay's events/s within 10%
of the ``BENCH_PR8.json`` baseline — the switch/link hooks and the rack
coordinator must cost the default path nothing. (Skipped when no
baseline exists.)
"""

import gc
import json
import time
from pathlib import Path

from repro.experiments import e8_connection_scaling as e8
from repro.experiments.common import fmt_table
from repro.experiments.e15_flow_fastpath import run_e15_planes
from repro.experiments.e21_fidelity_crossover import (
    PARITY_COLUMNS,
    run_parity as run_e21_parity,
)
from repro.experiments.e23_rack_fastforward import (
    headline,
    run_crossover,
    run_parity,
)
from repro.sim import Simulator

ARTIFACT = Path(__file__).parent / "artifacts" / "e23_rack_fastforward.json"
CONSOLIDATED = Path(__file__).parent / "artifacts" / "BENCH_PR9.json"
PR8_BASELINE = Path(__file__).parent / "artifacts" / "BENCH_PR8.json"

MIN_RACK_SPEEDUP = 5.0
MAX_E8_REGRESSION = 0.10

#: Satellite 1 (micro-opt) before/after, measured on an isolated
#: uplink→switch→downlink hop (200k pre-built frames, best of 4) at the
#: commit boundaries of this PR. The end-to-end two-stack path is
#: dominated by the host stacks and showed no change beyond noise.
MICRO_OPT_NOTE = {
    "what": "hoisted per-frame metric/attr lookups in L2Switch._forward "
            "and Link.send/_deliver",
    "isolated_hop_ns_per_pkt_before": 7740,
    "isolated_hop_ns_per_pkt_after": 6590,
    "isolated_hop_method": "uplink.send -> switch._forward -> downlink, "
                           "200k frames, best of 4 runs",
    "end_to_end_ns_per_pkt": "~100k (two full stacks; unchanged within "
                             "noise)",
}


def _metered(fn, *args, **kwargs):
    """Run ``fn`` and return (result, total events fired across every
    simulator it built, wall seconds) — bench-local instrumentation."""
    sims = []
    orig_init = Simulator.__init__

    def _tracking_init(self):
        orig_init(self)
        sims.append(self)

    # The 10k-connection crossover leaves two full testbeds' cyclic object
    # graphs behind; collect before metering so GC cost lands nowhere.
    gc.collect()
    Simulator.__init__ = _tracking_init
    t0 = time.perf_counter()
    try:
        result = fn(*args, **kwargs)
    finally:
        Simulator.__init__ = orig_init
    seconds = time.perf_counter() - t0
    return result, sum(s.events_fired for s in sims), seconds


def _e23():
    parity = run_parity()
    speedup = run_crossover()
    return parity, speedup


def test_e23_rack_fastforward(once):
    parity, speedup = once(_e23)
    h = headline(parity, speedup)

    print("\n" + fmt_table(parity["rows"] + parity["stage_rows"],
                           columns=PARITY_COLUMNS))
    print("\n" + fmt_table([speedup]))
    print(f"\nheadline: parity_ok={h['parity_ok']} "
          f"max_rel_err={h['max_rel_err']:.4%} "
          f"fluid={h['fluid_fraction']:.0%} "
          f"rack speedup={h['speedup']:.1f}x @ {h['connections']:,} conns "
          f"({h['bound']:,} bound)")

    # Acceptance: the cross-machine epoch is invisible in every counted
    # observable on both machines and the switch between them...
    assert parity["ok"], parity["rows"] + parity["stage_rows"]
    for row in parity["rows"]:
        assert row["ok"], row
    assert parity["conserved_ok"]
    assert parity["bound_ok"], parity["rack"]
    assert parity["fluid_fraction"] > 0.5
    assert h["max_rel_err"] == 0.0 or h["max_rel_err"] <= parity["tolerance"]
    # ...and absorbing the switch hop actually pays at rack scale.
    assert speedup["bound"] == speedup["connections"], speedup
    assert speedup["speedup"] >= MIN_RACK_SPEEDUP, speedup

    # The single-host parity leg (E21, same engine underneath) must still
    # report zero error.
    e21_parity = run_e21_parity()
    assert e21_parity["ok"], e21_parity["rows"]
    e21_max_err = max(float(r["rel_err"])
                      for r in e21_parity["rows"] + e21_parity["stage_rows"])
    print(f"e21 parity still exact: max_rel_err={e21_max_err:.4%}")
    assert e21_max_err == 0.0

    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(
        json.dumps(
            {"headline": h, "parity": parity["rows"],
             "stages": parity["stage_rows"], "speedup": speedup,
             "rack": parity["rack"], "e21_max_rel_err": e21_max_err,
             "micro_opt": MICRO_OPT_NOTE},
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {ARTIFACT}")


def test_bench_pr9_consolidated(once):
    """One artifact comparing the replay cost of the suite's heavy
    experiments on this tree — and the regression gate proving the
    switch/link fluid hooks cost the exact path nothing."""
    entries = {}
    _, ev, s = _metered(e8.run_e8, sweep=(256, 1_024), packets_per_point=4_096)
    entries["e8"] = {"events": ev, "seconds": s}
    _, ev, s = _metered(run_e15_planes, count=192)
    entries["e15"] = {"events": ev, "seconds": s}
    _, ev, s = _metered(run_e21_parity)
    entries["e21"] = {"events": ev, "seconds": s}
    (parity, speedup), ev, s = _metered(once, _e23)
    entries["e23"] = {
        "events": ev, "seconds": s,
        "parity_ok": bool(parity["ok"]),
        "fluid_fraction": parity["fluid_fraction"],
        "rack_speedup": speedup["speedup"],
        "bound": speedup["bound"],
    }

    CONSOLIDATED.parent.mkdir(parents=True, exist_ok=True)
    CONSOLIDATED.write_text(json.dumps(entries, indent=2) + "\n")
    for name, e in entries.items():
        print(f"{name}: {e['events']} events in {e['seconds']:.2f}s")
    print(f"wrote {CONSOLIDATED}")

    # Exact-mode regression gate: E8 runs with fast_forward off, so its
    # events/s measures the default path the new hooks must not slow.
    if not PR8_BASELINE.exists():
        print(f"{PR8_BASELINE.name} absent; skipping exact-mode "
              f"E8 regression check")
        return
    base = json.loads(PR8_BASELINE.read_text()).get("e8")
    if not base or not base.get("seconds"):
        print(f"{PR8_BASELINE.name} has no usable e8 entry; skipping")
        return
    base_rate = base["events"] / base["seconds"]
    cur_rate = entries["e8"]["events"] / entries["e8"]["seconds"]
    drop = 1.0 - cur_rate / base_rate
    print(f"e8 exact-mode: {cur_rate:,.0f} events/s vs baseline "
          f"{base_rate:,.0f} ({drop:+.1%} drop)")
    assert drop <= MAX_E8_REGRESSION, (
        f"exact-mode E8 replay regressed {drop:.1%} "
        f"(> {MAX_E8_REGRESSION:.0%}) vs {PR8_BASELINE.name}"
    )
