"""Two-pass text assembler for overlay programs.

Syntax, one instruction per line::

    start:                      ; labels end with ':'
        ldf r0, l4.dport        ; comments with ';' or '#'
        jne r0, 5432, miss
        cnt 0
        drop
    miss:
        accept

Operands are registers (``r0``..``r7``), decimal/hex immediates, field
names, or labels. Branch targets must be labels; the assembler resolves them
to absolute indices (the verifier then checks they are forward).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import AssemblerError
from .isa import (
    ALU_OPS,
    BRANCH_OPS,
    FIELDS,
    Instr,
    N_REGISTERS,
    OP_ACCEPT,
    OP_CNT,
    OP_DROP,
    OP_HALT,
    OP_JMP,
    OP_LDF,
    OP_LDI,
    OP_METER,
    OP_MIRROR,
    OP_MOV,
    OP_SETCLS,
    OP_SETQ,
    Program,
)


def _strip(line: str) -> str:
    for marker in (";", "#"):
        if marker in line:
            line = line[: line.index(marker)]
    return line.strip()


def _parse_reg(token: str, line_no: int) -> int:
    if not token.startswith("r") or not token[1:].isdigit():
        raise AssemblerError(f"line {line_no}: expected register, got {token!r}")
    idx = int(token[1:])
    if not 0 <= idx < N_REGISTERS:
        raise AssemblerError(f"line {line_no}: no such register r{idx}")
    return idx


def _parse_imm(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(f"line {line_no}: expected immediate, got {token!r}") from exc


def _parse_reg_or_imm(token: str, line_no: int) -> Tuple[str, int]:
    if token.startswith("r") and token[1:].isdigit():
        return ("reg", _parse_reg(token, line_no))
    return ("imm", _parse_imm(token, line_no))


def _split_operands(rest: str) -> List[str]:
    return [t.strip() for t in rest.split(",") if t.strip()]


def assemble(text: str, n_counters: int = 0, n_meters: int = 0, name: str = "") -> Program:
    """Assemble ``text`` into a :class:`~repro.overlay.isa.Program`.

    Raises :class:`~repro.errors.AssemblerError` with line numbers on any
    syntax problem. Does **not** verify — run the verifier before loading.
    """
    labels: Dict[str, int] = {}
    parsed: List[Tuple[int, str, List[str]]] = []  # (line_no, op, operands)

    # Pass 1: collect labels and raw instructions.
    index = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        while line.endswith(":") or (":" in line and line.split(":")[0].isidentifier()):
            label, _, remainder = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                break
            if label in labels:
                raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = index
            line = remainder.strip()
            if not line:
                break
        if not line:
            continue
        op, _, rest = line.partition(" ")
        parsed.append((line_no, op.lower(), _split_operands(rest)))
        index += 1

    # Pass 2: encode.
    instrs: List[Instr] = []
    for line_no, op, ops in parsed:
        instrs.append(_encode(op, ops, labels, line_no))
    return Program(instrs=tuple(instrs), n_counters=n_counters, n_meters=n_meters, name=name)


def _resolve_label(token: str, labels: Dict[str, int], line_no: int) -> int:
    if token not in labels:
        raise AssemblerError(f"line {line_no}: unknown label {token!r}")
    return labels[token]


def _expect(ops: List[str], count: int, op: str, line_no: int) -> None:
    if len(ops) != count:
        raise AssemblerError(
            f"line {line_no}: {op} takes {count} operand(s), got {len(ops)}"
        )


def _encode(op: str, ops: List[str], labels: Dict[str, int], line_no: int) -> Instr:
    if op in (OP_ACCEPT, OP_DROP, OP_HALT):
        _expect(ops, 0, op, line_no)
        return Instr(op=op)
    if op == OP_LDF:
        _expect(ops, 2, op, line_no)
        field = ops[1]
        if field not in FIELDS:
            raise AssemblerError(f"line {line_no}: unknown field {field!r}")
        return Instr(op=op, rd=_parse_reg(ops[0], line_no), field=field)
    if op == OP_LDI:
        _expect(ops, 2, op, line_no)
        return Instr(op=op, rd=_parse_reg(ops[0], line_no),
                     src=("imm", _parse_imm(ops[1], line_no)))
    if op == OP_MOV:
        _expect(ops, 2, op, line_no)
        return Instr(op=op, rd=_parse_reg(ops[0], line_no),
                     src=("reg", _parse_reg(ops[1], line_no)))
    if op in ALU_OPS:
        _expect(ops, 2, op, line_no)
        return Instr(op=op, rd=_parse_reg(ops[0], line_no),
                     src=_parse_reg_or_imm(ops[1], line_no))
    if op == OP_JMP:
        _expect(ops, 1, op, line_no)
        return Instr(op=op, target=_resolve_label(ops[0], labels, line_no))
    if op in BRANCH_OPS:
        _expect(ops, 3, op, line_no)
        return Instr(
            op=op,
            ra=_parse_reg(ops[0], line_no),
            src=_parse_reg_or_imm(ops[1], line_no),
            target=_resolve_label(ops[2], labels, line_no),
        )
    if op in (OP_SETQ, OP_SETCLS):
        _expect(ops, 1, op, line_no)
        return Instr(op=op, src=_parse_reg_or_imm(ops[0], line_no))
    if op in (OP_MIRROR, OP_CNT):
        _expect(ops, 1, op, line_no)
        return Instr(op=op, index=_parse_imm(ops[0], line_no))
    if op == OP_METER:
        _expect(ops, 2, op, line_no)
        return Instr(op=op, index=_parse_imm(ops[0], line_no),
                     rd=_parse_reg(ops[1], line_no))
    raise AssemblerError(f"line {line_no}: unknown opcode {op!r}")
