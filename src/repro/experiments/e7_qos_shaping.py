"""E7 — §2 QoS: shape the game without hurting productive work.

Bob's game (which hops server ports every session) and a productive bulk
app compete for a constrained egress link. Policy: ``tc ... wfq /games:1
/work:3``. Under a dataplane with a process view the peer observes a ~25/75
split; under bypass no policy exists and the split follows the offered
load (~50/50); the hypervisor refuses (it could only shape by port, and the
game's ports change every session).
"""

from __future__ import annotations

from typing import List, Optional

from .. import units
from ..core import NormanOS
from ..dataplanes import (
    BypassDataplane,
    HypervisorDataplane,
    KernelPathDataplane,
    SidecarDataplane,
    Testbed,
)
from ..errors import UnsupportedOperation
from ..apps import BulkSender, GameClient
from ..tools import Tc
from .common import Row, fmt_table

LINK_RATE = 2 * units.GBPS
WINDOW_NS = 30 * units.MS
PAYLOAD = 1_200
WEIGHTS = "/games:1 /work:3"
EXPECTED_WORK_SHARE = 0.75

PLANES = (KernelPathDataplane, BypassDataplane, SidecarDataplane,
          HypervisorDataplane, NormanOS)


def run_e7(window_ns: int = WINDOW_NS) -> List[Row]:
    rows: List[Row] = []
    for plane_cls in PLANES:
        tb = Testbed(plane_cls, link_rate_bps=LINK_RATE)
        tb.kernel.cgroups.create("/games")
        tb.kernel.cgroups.create("/work")

        game = GameClient(tb, user="bob", core_id=1, payload_len=PAYLOAD,
                          packets_per_session=100_000, sessions=1, seed=3)
        work = BulkSender(tb, comm="builder", user="charlie", core_id=2,
                          payload_len=PAYLOAD, count=None)
        tb.kernel.cgroups.assign(game.proc, "/games")
        tb.kernel.cgroups.assign(work.proc, "/work")

        policy = "wfq /games:1 /work:3"
        try:
            Tc(tb.dataplane, tb.kernel)(f"qdisc replace dev nic0 root wfq {WEIGHTS}")
        except UnsupportedOperation as exc:
            policy = f"refused: {_first_clause(str(exc))}"
        tb.run_all()  # commit classifier/scheduler loads

        game.start()
        work.start()
        tb.run(until=window_ns)
        game.stop()
        work.stop()
        tb.run(until=window_ns)  # do not count post-window drain

        game_bytes = sum(tb.peer.bytes_to_dport(p) for p in set(game.ports_used))
        work_bytes = tb.peer.bytes_to_dport(9_000)
        total = max(game_bytes + work_bytes, 1)
        work_share = work_bytes / total
        rows.append({
            "plane": plane_cls.name,
            "policy": policy,
            "game_share_pct": 100 * game_bytes / total,
            "work_share_pct": 100 * work_share,
            "link_util_pct": 100 * min(1.0, units.bits(total) / (LINK_RATE * units.ns_to_sec(window_ns))),
            "enforced": abs(work_share - EXPECTED_WORK_SHARE) < 0.08,
        })
    return rows


def _first_clause(text: str) -> str:
    return text.split(":")[0].strip()


def headline(rows: List[Row]) -> dict:
    by_plane = {r["plane"]: r for r in rows}
    return {
        "kopi_work_share_pct": by_plane["kopi"]["work_share_pct"],
        "bypass_work_share_pct": by_plane["bypass"]["work_share_pct"],
        "enforcing_planes": [r["plane"] for r in rows if r["enforced"]],
    }


def main() -> str:
    rows = run_e7()
    h = headline(rows)
    return "\n".join([
        fmt_table(rows),
        "",
        f"headline: weighted shares hold on {h['enforcing_planes']}; bypass "
        f"gives work {h['bypass_work_share_pct']:.0f}% (unshaped) vs KOPI "
        f"{h['kopi_work_share_pct']:.0f}%",
    ])


if __name__ == "__main__":
    print(main())
