"""Cost model validation and derived quantities."""

import pytest

from repro import units
from repro.config import DEFAULT_COSTS, CostModel
from repro.errors import ConfigError


class TestDefaults:
    def test_default_model_is_valid(self):
        assert DEFAULT_COSTS.syscall_ns > 0

    def test_llc_sets_derivation(self):
        m = DEFAULT_COSTS
        assert m.llc_sets * m.llc_ways * m.cache_line_bytes == m.llc_size_bytes

    def test_ddio_capacity_is_two_elevenths_of_llc(self):
        m = DEFAULT_COSTS
        assert m.ddio_capacity_bytes == m.llc_size_bytes * 2 // 11

    def test_connection_cliff_is_calibrated_near_1024(self):
        """The paper reports collapse past 1024 connections; the default
        footprint must put the DDIO break-even point there."""
        m = DEFAULT_COSTS
        breakeven = m.ddio_capacity_bytes / m.conn_footprint_bytes
        assert 900 <= breakeven <= 1100


class TestValidation:
    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(syscall_ns=-1)

    def test_ddio_ways_cannot_exceed_llc_ways(self):
        with pytest.raises(ConfigError):
            CostModel(ddio_ways=12, llc_ways=11)

    def test_llc_size_must_divide_evenly(self):
        with pytest.raises(ConfigError):
            CostModel(llc_size_bytes=33 * units.MB + 1)


class TestHelpers:
    def test_copy_ns_scales_linearly(self):
        m = DEFAULT_COSTS
        assert m.copy_ns(0) == 0
        assert m.copy_ns(1_000_000) == round(1_000_000 * m.copy_ns_per_byte)

    def test_copy_ns_minimum_one(self):
        assert DEFAULT_COSTS.copy_ns(1) == 1

    def test_replace_builds_modified_copy(self):
        fast = DEFAULT_COSTS.replace(syscall_ns=1)
        assert fast.syscall_ns == 1
        assert DEFAULT_COSTS.syscall_ns == 500
        assert fast.context_switch_ns == DEFAULT_COSTS.context_switch_ns

    def test_describe_includes_derived(self):
        d = DEFAULT_COSTS.describe()
        assert "derived.ddio_capacity_bytes" in d
        assert d["syscall_ns"] == 500
