"""Discrete-event simulation core.

The engine keeps simulated time as integer nanoseconds and executes callbacks
in (time, insertion-order) order, which makes every run deterministic for a
fixed seed. On top of the raw engine sit :class:`~repro.sim.events.Signal`
(one-shot promise) and :class:`~repro.sim.process.SimProcess`
(generator-based coroutine), which is how applications, kernel threads, and
NIC engines are written.
"""

from .engine import EventHandle, Simulator
from .events import AllOf, AnyOf, Signal
from .fastforward import FastForwardController, FlowProfile
from .metrics import Counter, Histogram, MetricSet, RateMeter, TimeSeries
from .process import SimProcess
from .rand import make_rng

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "EventHandle",
    "FastForwardController",
    "FlowProfile",
    "Histogram",
    "MetricSet",
    "RateMeter",
    "Signal",
    "SimProcess",
    "Simulator",
    "TimeSeries",
    "make_rng",
]
