"""The unified interposition plane.

The paper's thesis is that interposition is *one* concern that today lives
in many places. This package makes that concrete inside the repro: every
mechanism that stands between an application and the wire — netfilter
chains, qdisc schedulers, conntrack, sniffer taps, NIC steering, and
SmartNIC overlay programs — registers an :class:`InterpositionPoint` with
the :class:`PolicyEngine` owned by its :class:`~repro.host.machine.Machine`.

The engine gives every mechanism the same three things:

* a **versioned policy table** with atomic (epoch/RCU-style) commits — a
  packet is evaluated against exactly one table version, never a mix;
* a **modeled install latency** per plane (synchronous kernel write,
  ~50 µs overlay load, seconds-long bitstream reconfiguration), recorded
  per commit in :attr:`PolicyEngine.history`;
* uniform **hit/drop/update counters** surfaced through ``sim.metrics``
  (E14 sweeps policy-churn rate across planes on top of exactly these).
"""

from .engine import PolicyEngine
from .fastpath import FlowFastPath, FlowVerdict
from .point import InterpositionPoint, PolicyCommit

__all__ = [
    "FlowFastPath",
    "FlowVerdict",
    "InterpositionPoint",
    "PolicyCommit",
    "PolicyEngine",
]
