"""E15 — flow fast path bench: hit rates, verdict parity, wall-clock wins.

Replays the E15 sweeps and asserts the acceptance shape:

* Steady-state traffic hits the cache ≥ 90% of the time on every plane,
  and the kernel path's slow-path filter evaluations collapse to ~one
  per flow — with delivery byte-identical to the cache-off run.
* Policy churn degrades the hit rate monotonically-ish toward the packet
  interval (each commit lazily invalidates the whole cache).
* The E8 connection-scaling point runs measurably faster in *real*
  seconds with the cache on, while its simulated results stay put.

Writes ``e15_flow_fastpath.json`` next to the E12–E14 artifacts, plus the
consolidated ``BENCH_PR4.json`` (events fired + wall seconds for the
E8/E12/E15 replays).
"""

import json
import time
from pathlib import Path

from repro.experiments.common import fmt_table
from repro.experiments import e8_connection_scaling as e8
from repro.experiments import e12_batching as e12
from repro.experiments.e15_flow_fastpath import (
    CHURN_COLUMNS,
    PLANE_COLUMNS,
    headline,
    run_e8_wallclock,
    run_e15_churn,
    run_e15_planes,
)
from repro.sim import Simulator

ARTIFACT = Path(__file__).parent / "artifacts" / "e15_flow_fastpath.json"
CONSOLIDATED = Path(__file__).parent / "artifacts" / "BENCH_PR4.json"


def _metered(fn, *args, **kwargs):
    """Run ``fn`` and return (result, total events fired across every
    simulator it built, wall seconds) — bench-local instrumentation."""
    sims = []
    orig_init = Simulator.__init__

    def _tracking_init(self):
        orig_init(self)
        sims.append(self)

    Simulator.__init__ = _tracking_init
    t0 = time.perf_counter()
    try:
        result = fn(*args, **kwargs)
    finally:
        Simulator.__init__ = orig_init
    seconds = time.perf_counter() - t0
    return result, sum(s.events_fired for s in sims), seconds


def test_e15_flow_fastpath(once):
    plane_rows, plane_events, plane_s = _metered(once, run_e15_planes, count=192)
    print("\n" + fmt_table(plane_rows, columns=PLANE_COLUMNS))
    churn_rows = run_e15_churn(count=192)
    print("\n" + fmt_table(churn_rows, columns=CHURN_COLUMNS))
    h = headline(plane_rows, churn_rows)

    # Acceptance: ≥ 90% hits at steady state and an order of magnitude
    # fewer slow-path filter evaluations on the kernel path.
    assert h["kernel_hit_rate"] >= 0.9
    assert h["kernel_evals_on"] * 10 <= h["kernel_evals_off"]
    for row in plane_rows:
        assert row["hit_rate"] >= 0.9, row
    # Churn: every commit invalidates, so the fastest toggle rate must
    # show a strictly lower hit rate than the no-churn baseline.
    assert h["churn_hit_rate"] < h["steady_state_hit_rate"]

    # The wall-clock claim, measured honestly on the E8 point: the cache
    # elides Python-level rule walks, so the replay itself gets faster.
    # 8192 packets over 512 conns = 16 per flow: the steady-state regime
    # (one compulsory miss per flow, then hits).
    wc = run_e8_wallclock(n_conns=512, packets_total=8_192)
    print(
        f"\nE8 wall-clock: off {wc['wall_s_off']:.2f}s on {wc['wall_s_on']:.2f}s "
        f"(speedup {wc['wall_speedup']:.2f}x, hit rate {wc['hit_rate']:.3f})"
    )
    assert wc["hit_rate"] >= 0.9
    # Simulated physics must not move: the cache only elides re-walks.
    assert wc["goodput_on_gbps"] == wc["goodput_off_gbps"]

    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(
        json.dumps(
            {
                "headline": h,
                "planes": plane_rows,
                "churn": churn_rows,
                "e8_wallclock": wc,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {ARTIFACT}")


def test_bench_pr4_consolidated(once):
    """One artifact comparing the replay cost of the suite's heavy
    experiments on this tree: events fired and wall seconds each."""
    entries = {}
    _, ev, s = _metered(e8.run_e8, sweep=(256, 1_024), packets_per_point=4_096)
    entries["e8"] = {"events": ev, "seconds": s}
    _, ev, s = _metered(e12.run_e12, count=160, batches=(1, 16, 64))
    entries["e12"] = {"events": ev, "seconds": s}
    rows, ev, s = _metered(once, run_e15_planes, count=192)
    entries["e15"] = {"events": ev, "seconds": s}
    entries["e15"]["kernel_cpu_speedup"] = next(
        r["cpu_speedup"] for r in rows if r["plane"] == "kernel"
    )

    CONSOLIDATED.parent.mkdir(parents=True, exist_ok=True)
    CONSOLIDATED.write_text(json.dumps(entries, indent=2) + "\n")
    for name, e in entries.items():
        print(f"{name}: {e['events']} events in {e['seconds']:.2f}s")
    print(f"wrote {CONSOLIDATED}")
