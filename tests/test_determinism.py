"""Bit-for-bit determinism: the whole point of integer-ns simulation.

Two identical runs must produce identical timestamps, counters, and
latencies — this is what makes every number in EXPERIMENTS.md reproducible
and every test non-flaky.
"""

from repro import units
from repro.core import NormanOS
from repro.dataplanes import Testbed
from repro.dataplanes.testbed import PEER_IP
from repro.net import PROTO_UDP
from repro.sim import SimProcess
from repro.apps import BulkSender, GameClient, RpcClient


def run_workload():
    tb = Testbed(NormanOS)
    tb.peer.enable_echo(lambda pkt: pkt.payload_len if pkt.five_tuple.dport == 9_100 else None)
    bulk = BulkSender(tb, comm="bulk", user="bob", core_id=1, count=30).start()
    rpc = RpcClient(tb, comm="rpc", user="bob", core_id=2, count=10).start()
    game = GameClient(tb, user="charlie", core_id=3, sessions=2,
                      packets_per_session=5, seed=9).start()
    tb.run_all()
    return {
        "end_time": tb.sim.now,
        "events": tb.sim.events_fired,
        "peer_pkts": len(tb.peer.received),
        "peer_timestamps": tuple(p.meta.delivered_ns for p in tb.peer.received),
        "rpc_rtts": tuple(rpc.rtt._samples),
        "game_ports": tuple(game.ports_used),
        "bulk_goodput": bulk.goodput_bps(),
        "core_busy": tuple(c.busy_ns for c in tb.machine.cpus.cores),
        "syscalls": tb.kernel.syscalls.total_syscalls,
    }


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        assert run_workload() == run_workload()

    def test_structural_cache_run_deterministic(self):
        from repro.experiments.e8_connection_scaling import run_point

        a = run_point(256, packets_total=1_024)
        b = run_point(256, packets_total=1_024)
        assert a == b

    def test_burst_workload_deterministic(self):
        """The coalesced-event fast path (batch_size > 1) must be exactly as
        reproducible as the per-packet path."""
        from dataclasses import replace

        from repro.config import DEFAULT_COSTS

        def run_burst_workload():
            costs = replace(DEFAULT_COSTS, batch_size=8)
            tb = Testbed(NormanOS, costs=costs)
            bulk = BulkSender(tb, comm="bulk", user="bob", core_id=1,
                              count=64, burst=8).start()
            tb.run_all()
            return {
                "end_time": tb.sim.now,
                "events": tb.sim.events_fired,
                "peer_timestamps": tuple(p.meta.delivered_ns for p in tb.peer.received),
                "bulk_goodput": bulk.goodput_bps(),
                "core_busy": tuple(c.busy_ns for c in tb.machine.cpus.cores),
            }

        assert run_burst_workload() == run_burst_workload()

    def test_burst_of_one_is_the_seed_trace(self):
        """send()/recv() are wrappers over the burst paths; with
        batch_size=1 the whole mixed workload must fingerprint exactly as
        it did before the burst refactor (same events, times, syscalls)."""
        baseline = run_workload()
        assert baseline == run_workload()
        assert baseline["events"] > 0

    def test_engine_installed_and_counting_under_seed_workload(self):
        """The PolicyEngine is no passive bolt-on: during the fingerprint
        workload every KOPI mechanism is registered and the datapath points
        are actually counting evaluations. Together with the fingerprint
        test below this pins the refactor's core claim — the engine observes
        everything and perturbs nothing."""
        tb = Testbed(NormanOS)
        bulk = BulkSender(tb, comm="bulk", user="bob", core_id=1, count=30)
        bulk.start()
        sink = tb.spawn("sink", "bob", core_id=2)
        tb.dataplane.open_endpoint(sink, PROTO_UDP, 9_000)
        for i in range(8):
            tb.sim.at(i * units.US, tb.peer.send_udp, 555, 9_000, 256)
        tb.run_all()
        engine = tb.machine.interpose
        assert {p.mechanism for p in engine} == {
            "netfilter", "qdisc", "tap", "steering", "overlay"
        }
        assert engine.get("steering").evaluated > 0
        assert engine.get("qdisc").evaluated > 0
        assert not engine.pending()
        # Observation is free: counters moved, the event trace did not.
        assert run_workload() == run_workload()

    def test_zerocopy_off_reproduces_seed_fingerprint(self):
        """The copy ledger is observational and the elision modes default
        off: the mixed workload must hash to the exact fingerprint captured
        on the seed tree, byte for byte. Ints and floats repr identically
        across supported Pythons, so the sha256 is stable. If this fails,
        a 'pure accounting' change altered simulated behaviour."""
        import hashlib

        fingerprint = hashlib.sha256(
            repr(sorted(run_workload().items())).encode()
        ).hexdigest()
        assert fingerprint == (
            "3eeddc5fcef1881523bc34dcc4bab94e"  # captured from the seed
            "d92fe292723a9fd840f4c71ac94c6820"
        )
