"""E10 — §3/§4.4/§5: programmability and reconfiguration latency.

Three kinds of change, three targets:

* **configuration update** (new iptables rule): kernel software table vs
  KOPI overlay recompile+load vs fixed-function table insert — all
  measured, in simulated time, through the real mechanisms;
* **feature update** (new policy *type*, e.g. adding eBPF): kernel patch
  (software), KOPI full bitstream (seconds, dataplane offline — we measure
  the packets dropped under live traffic), fixed-function: impossible;
* **a year of churn**: the paper counts 377 net/netfilter + 249 net/sched
  commits in 2020. Replaying that rate against each target shows which
  platforms can track kernel-speed policy evolution.
"""

from __future__ import annotations

from typing import List, Optional

from .. import units
from ..config import DEFAULT_COSTS
from ..core import NormanOS
from ..core.nic_dataplane import KOPI_BITSTREAM
from ..dataplanes import Testbed
from ..errors import ReconfigurationUnsupported
from ..kernel.netfilter import ACCEPT, CHAIN_OUTPUT, NetfilterRule
from ..net.headers import PROTO_UDP
from .common import Row, fmt_table

NETFILTER_COMMITS_2020 = 377
SCHED_COMMITS_2020 = 249
TOTAL_COMMITS = NETFILTER_COMMITS_2020 + SCHED_COMMITS_2020
FEATURE_FRACTION = 0.10  # commits that change functionality, not just config


def measure_kopi_config_update() -> int:
    """Wall (simulated) time for one iptables rule to take effect on the NIC."""
    tb = Testbed(NormanOS)
    proc = tb.spawn("app", "bob", core_id=1)
    tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
    tb.run_all()
    start = tb.sim.now
    done: List[int] = []
    tb.dataplane.install_filter_rule(
        NetfilterRule(verdict=ACCEPT, chain=CHAIN_OUTPUT, dport=80)
    ).add_callback(lambda _s: done.append(tb.sim.now))
    tb.run_all()
    return done[0] - start


def measure_kopi_feature_update(traffic_pps: int = 100_000) -> Row:
    """Full bitstream reload under live inbound traffic: how long offline,
    how many packets lost."""
    tb = Testbed(NormanOS)
    proc = tb.spawn("srv", "bob", core_id=1)
    tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
    tb.run_all()
    gap = units.SEC // traffic_pps
    start = tb.sim.now
    reload_done: List[int] = []
    tb.dataplane.nic.fpga.load_bitstream(KOPI_BITSTREAM).add_callback(
        lambda _s: reload_done.append(tb.sim.now)
    )
    n_pkts = int((DEFAULT_COSTS.bitstream_load_ns * 1.2) // gap)
    for i in range(n_pkts):
        tb.sim.at(start + i * gap, tb.peer.send_udp, 555, 7000, 200)
    tb.run_all()
    offline_ns = reload_done[0] - start
    drops = tb.dataplane.nic.metrics.counter("rx_offline_drops").value
    return {
        "offline_ns": offline_ns,
        "drops": drops,
        "offered": n_pkts,
        "drop_pct": 100 * drops / n_pkts,
    }


def run_e10() -> List[Row]:
    kopi_config_ns = measure_kopi_config_update()
    kopi_feature = measure_kopi_feature_update()

    # Fixed-function: a table insert is cheap; a feature change is refused.
    from ..nic.fixed_function import FixedFunctionNic
    from ..host.machine import Machine
    from ..net.link import Link

    m = Machine(n_cores=1)
    ff = FixedFunctionNic(m.sim, m.costs, m.dma, Link(m.sim, units.GBPS))
    try:
        ff.load_program(object())
        ff_feature: Optional[str] = "supported"
    except ReconfigurationUnsupported:
        ff_feature = "hardware revision (years)"

    rows: List[Row] = [
        {
            "target": "kernel (software)",
            "config_update_us": DEFAULT_COSTS.kernel_update_ns / units.US,
            "feature_update": "kernel patch (software release)",
            "offline_during_feature": "no",
        },
        {
            "target": "kopi (overlay)",
            "config_update_us": kopi_config_ns / units.US,
            "feature_update": f"bitstream {kopi_feature['offline_ns'] / units.SEC:.1f}s, "
                              f"{kopi_feature['drop_pct']:.0f}% of live traffic dropped",
            "offline_during_feature": "yes (seconds)",
        },
        {
            "target": "fixed-function NIC",
            "config_update_us": DEFAULT_COSTS.table_update_ns / units.US,
            "feature_update": ff_feature,
            "offline_during_feature": "n/a (cannot change)",
        },
    ]
    return rows


def churn_rows() -> List[Row]:
    """A 2020-sized year of policy evolution against each target."""
    feature = round(TOTAL_COMMITS * FEATURE_FRACTION)
    config = TOTAL_COMMITS - feature
    kernel_ns = TOTAL_COMMITS * DEFAULT_COSTS.kernel_update_ns
    kopi_ns = (config * DEFAULT_COSTS.overlay_load_ns
               + feature * DEFAULT_COSTS.bitstream_load_ns)
    return [
        {"target": "kernel (software)", "updates_applied": TOTAL_COMMITS,
         "unsupported": 0, "cumulative_update_time": units.fmt_time(kernel_ns)},
        {"target": "kopi (overlay)", "updates_applied": TOTAL_COMMITS,
         "unsupported": 0, "cumulative_update_time": units.fmt_time(kopi_ns)},
        {"target": "fixed-function NIC", "updates_applied": config,
         "unsupported": feature, "cumulative_update_time": "falls behind permanently"},
    ]


def main() -> str:
    rows = run_e10()
    churn = churn_rows()
    return "\n".join([
        "per-update latency (measured through the real mechanisms):",
        fmt_table(rows),
        "",
        f"one year of churn ({NETFILTER_COMMITS_2020} netfilter + "
        f"{SCHED_COMMITS_2020} sched commits, {FEATURE_FRACTION:.0%} feature-level):",
        fmt_table(churn),
        "",
        "headline: overlay loads keep KOPI config changes in microseconds; only "
        "feature-level changes pay the seconds-long bitstream cost, and "
        "fixed-function hardware cannot apply them at all",
    ])


if __name__ == "__main__":
    print(main())
