#!/usr/bin/env python3
"""Two complete hosts on one switch: a legacy DPDK (bypass) client on host A
talks to a Norman server on host B. Host B's administrator keeps full
visibility and control over *her* side regardless of what the remote end
runs.

Run:  python examples/two_hosts.py
"""

from repro.core import NormanOS
from repro.dataplanes import BypassDataplane
from repro.dataplanes.multihost import HOST_B_IP, TwoHostTestbed
from repro.net import PROTO_UDP
from repro.sim import SimProcess
from repro.tools import Ss, Tcpdump


def main() -> None:
    tb = TwoHostTestbed(BypassDataplane, NormanOS)

    client = tb.host_a.spawn("dpdk-client", "bob", core_id=1)
    server = tb.host_b.spawn("kv-server", "charlie", core_id=1)
    ep_c = tb.host_a.dataplane.open_endpoint(client, PROTO_UDP, 6000)
    ep_s = tb.host_b.dataplane.open_endpoint(server, PROTO_UDP, 7000)

    dump_b = Tcpdump(tb.host_b.dataplane)
    session = dump_b.start("udp")

    def srv():
        while True:
            size, src_ip, sport = yield ep_s.recv(blocking=True)
            yield ep_s.send(size // 2, dst=(src_ip, sport))

    def cli():
        yield ep_c.connect(HOST_B_IP, 7000)
        for i in range(3):
            yield ep_c.send(400 + 100 * i)
            reply = yield ep_c.recv(blocking=True)
            print(f"  client got {reply[0]}B reply")
        ep_c.close()

    SimProcess(tb.sim, srv())
    SimProcess(tb.sim, cli())
    tb.run(until=10_000_000)

    print("\n=== host B's attributed capture of the cross-host flow ===")
    print(dump_b.format(session))

    print("\n=== host B's ss ===")
    print(Ss(tb.host_b.dataplane, tb.host_b.kernel)())
    ep_s.close()
    tb.run_all()

    print("\n=== switch MAC table ===")
    for mac, port in sorted(tb.switch.mac_table().items(), key=lambda kv: kv[1]):
        print(f"  port {port}: {mac}")


if __name__ == "__main__":
    main()
