"""N complete hosts joined by an L2 switch — the cluster rack.

The single-host :class:`~repro.dataplanes.testbed.Testbed` talks to a
synthetic peer; this module builds *full stacks* (each with its own
machine, kernel, NIC, and — possibly different — dataplane) on one switch
so experiments can exercise genuine end-to-end paths: a Norman host
serving a bypass host, attributed captures of cross-host RPC, switch MAC
learning, and so on.

:class:`Rack` is the general form: N backends, optionally fronted by the
switch's in-network L4 load balancer (``CostModel.cluster_lb``) and a live
flow-migration coordinator (``CostModel.flow_migration``).
:class:`TwoHostTestbed` is the original two-host shape, kept as a thin
:class:`Rack` with exactly two hosts — same construction order, same
event trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type

from ..cluster import FlowMigration, L4LoadBalancer, MigrationCoordinator, vip_mac
from ..config import DEFAULT_COSTS, CostModel
from ..errors import PolicyError, SimulationError
from ..host.machine import Machine
from ..net.addresses import IPv4Address, MacAddress
from ..net.flow import FiveTuple
from ..net.link import Link
from ..net.switch import L2Switch
from ..sim import Simulator
from ..sim.fastforward import RackFastForward
from .base import Dataplane

HOST_A_IP = IPv4Address.parse("10.0.0.1")
HOST_A_MAC = MacAddress.from_index(1)
HOST_B_IP = IPv4Address.parse("10.0.0.2")
HOST_B_MAC = MacAddress.from_index(2)


def rack_ip(index: int) -> IPv4Address:
    """Default address plan: host ``index`` (0-based) is ``10.0.0.{i+1}``."""
    if not 0 <= index < 254:
        raise SimulationError(f"rack address plan holds 254 hosts: {index}")
    return IPv4Address.parse(f"10.0.0.{index + 1}")


def rack_mac(index: int) -> MacAddress:
    return MacAddress.from_index(index + 1)


@dataclass
class HostSpec:
    """One host's recipe: the dataplane to build and its identity."""

    name: str
    plane_cls: Type[Dataplane]
    ip: IPv4Address
    mac: MacAddress
    plane_kwargs: dict = field(default_factory=dict)
    #: Per-host link rate; None inherits the rack's rate. An asymmetric
    #: rack (fast clients, slow backend links) is how E18 builds its
    #: hot-backend contention.
    link_rate_bps: Optional[int] = None

    @classmethod
    def indexed(cls, index: int, name: str, plane_cls: Type[Dataplane],
                **plane_kwargs: object) -> "HostSpec":
        """A spec on the default address plan (:func:`rack_ip`)."""
        return cls(name, plane_cls, rack_ip(index), rack_mac(index),
                   dict(plane_kwargs))

    def with_rate(self, link_rate_bps: int) -> "HostSpec":
        self.link_rate_bps = link_rate_bps
        return self


class HostStack:
    """One host's machine + dataplane, wired to a switch port."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        plane_cls: Type[Dataplane],
        ip: IPv4Address,
        mac: MacAddress,
        switch: L2Switch,
        costs: CostModel,
        n_cores: int,
        link_rate_bps: int,
        **plane_kwargs: object,
    ):
        self.name = name
        self.ip = ip
        self.mac = mac
        self.machine = Machine(sim=sim, costs=costs, n_cores=n_cores)
        # Downlink: switch -> host, feeds the dataplane's RX entry.
        self.downlink = Link(sim, link_rate_bps, costs.link_propagation_ns,
                             name=f"{name}.down")
        self.port = switch.add_port(self.downlink)
        # Uplink: host -> switch; this is the dataplane's egress.
        self.uplink = Link(sim, link_rate_bps, costs.link_propagation_ns,
                           name=f"{name}.up")
        self.uplink.attach(switch.ingress(self.port))
        self.dataplane: Dataplane = plane_cls(  # type: ignore[call-arg]
            self.machine, ip, mac, self.uplink, **plane_kwargs
        )
        self.downlink.attach(self.dataplane.wire_rx)  # type: ignore[attr-defined]
        if costs.fast_forward and costs.ff_cross_machine:
            # The rack-scale fluid path: the uplink forwards epochs through
            # the switch's learned-port fast path, and the downlink lands
            # them in this host's promoted RX flows. A plane without a
            # fluid RX entry (the kernel stack) only skips the downlink
            # hook — its RX hot path never promotes, and the sender-side
            # gate refuses TX promotion toward an unpromoted receiver, so
            # no fluid epoch can ever be aimed at it.
            self.uplink.attach_fluid(switch.fluid_ingress(self.port))
            rx_fluid = getattr(self.dataplane, "wire_rx_fluid", None)
            if rx_fluid is not None:
                self.downlink.attach_fluid(rx_fluid)

    @property
    def kernel(self):
        return getattr(self.dataplane, "kernel")

    def user(self, name: str):
        users = self.kernel.users
        return users.by_name(name) if name in users else users.add(name)

    def spawn(self, comm: str, user_name: str = "root", core_id: int = 0):
        return self.kernel.spawn(comm, self.user(user_name), core_id=core_id)


class Rack:
    """N hosts on one switch, each possibly running a different dataplane.

    With the cluster knobs off this is exactly the multi-host wiring the
    two-host testbed always did, generalized to N. ``cluster_lb`` grows
    the switch's L4 balancer stage (:meth:`add_vip` installs services);
    ``flow_migration`` additionally builds the migration coordinator
    (:meth:`migrate` moves a live flow between backends).
    """

    __test__ = False

    def __init__(
        self,
        specs: Sequence[HostSpec],
        costs: CostModel = DEFAULT_COSTS,
        n_cores: int = 4,
        link_rate_bps: Optional[int] = None,
    ):
        if not specs:
            raise SimulationError("a rack needs at least one host")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate host names: {names}")
        self.sim = Simulator()
        self.costs = costs
        rate = link_rate_bps or costs.nic_line_rate_bps
        self.switch = L2Switch(self.sim)
        self.hosts: List[HostStack] = [
            HostStack(
                self.sim, spec.name, spec.plane_cls, spec.ip, spec.mac,
                self.switch, costs, n_cores,
                spec.link_rate_bps or rate, **spec.plane_kwargs,
            )
            for spec in specs
        ]
        self._by_name: Dict[str, HostStack] = {h.name: h for h in self.hosts}
        # The simulation's address book (no ARP resolution delays):
        # full mesh, in host order.
        for a in self.hosts:
            for b in self.hosts:
                if a is not b:
                    a.kernel.register_neighbor(b.ip, b.mac)
        # Rack-scale fast-forward: one coordinator above the per-machine
        # controllers binds steady host→switch→host flows into end-to-end
        # epochs.
        self.rack: Optional[RackFastForward] = None
        if costs.fast_forward and costs.ff_cross_machine:
            self.rack = RackFastForward(self.switch)
            for host in self.hosts:
                self.rack.add_host(
                    host.name, host.machine,
                    rx_plane=host.dataplane,
                    tx_plane=getattr(host.dataplane, "tx_ff", None),
                    ip=host.ip, mac=host.mac, port=host.port,
                    uplink=host.uplink, downlink=host.downlink,
                )
        # Cluster scale-out: the balancer (and on top of it the migration
        # coordinator) exist only behind their knobs — with both off, no
        # object is constructed and the switch's forwarding loop never
        # probes a balancer that could steer.
        self.balancer: Optional[L4LoadBalancer] = None
        self.coordinator: Optional[MigrationCoordinator] = None
        self._vip_count = 0
        if costs.cluster_lb:
            self.balancer = L4LoadBalancer(self.sim, self.switch, costs)
            for host in self.hosts:
                self.balancer.register_backend(host.name, host.mac)
            if costs.flow_migration:
                self.coordinator = MigrationCoordinator(
                    self.sim, costs, self.balancer)
                for host in self.hosts:
                    self.coordinator.add_backend(host.name, host)

    # -- cluster control plane ---------------------------------------------

    def host(self, name: str) -> HostStack:
        try:
            return self._by_name[name]
        except KeyError:
            raise SimulationError(f"no such host: {name!r}")

    def add_vip(self, ip: IPv4Address, backends: Sequence[str]):
        """Install a virtual service: ``ip`` resolves (on every host's
        neighbor table) to a virtual MAC the switch's balancer answers
        for, consistently hashed over ``backends``. Backend kernels are
        told they serve the VIP (introspection only — demux is by port,
        DSR-style, so a migrated flow keeps its five-tuple)."""
        if self.balancer is None:
            raise PolicyError(
                "add_vip needs CostModel.cluster_lb: with the knob off the "
                "switch has no balancer stage")
        for name in backends:
            if name not in self._by_name:
                raise PolicyError(f"unknown backend {name!r}")
        mac = vip_mac(self._vip_count)
        self._vip_count += 1
        vs = self.balancer.add_vip(ip, mac, backends)
        for host in self.hosts:
            host.kernel.register_neighbor(ip, mac)
        for name in backends:
            self._by_name[name].kernel.netstack.add_vip(ip)
        return vs

    def migrate(self, flow: FiveTuple, target: str) -> FlowMigration:
        """Live-migrate ``flow`` to backend ``target`` (see
        :class:`~repro.cluster.MigrationCoordinator`)."""
        if self.coordinator is None:
            raise PolicyError(
                "migrate needs CostModel.flow_migration: with the knob off "
                "no migration coordinator exists")
        return self.coordinator.migrate(flow, target)

    # -- running -----------------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        return self.sim.run(until=until)

    def run_all(self, max_events: int = 10_000_000) -> int:
        return self.sim.run_until_idle(max_events=max_events)


class TwoHostTestbed(Rack):
    """Host A and host B on one switch, possibly running different
    dataplanes — the original two-host shape, now a two-entry
    :class:`Rack`."""

    __test__ = False

    def __init__(
        self,
        plane_a: Type[Dataplane],
        plane_b: Type[Dataplane],
        costs: CostModel = DEFAULT_COSTS,
        n_cores: int = 4,
        link_rate_bps: Optional[int] = None,
        plane_a_kwargs: Optional[dict] = None,
        plane_b_kwargs: Optional[dict] = None,
    ):
        super().__init__(
            [
                HostSpec("hostA", plane_a, HOST_A_IP, HOST_A_MAC,
                         dict(plane_a_kwargs or {})),
                HostSpec("hostB", plane_b, HOST_B_IP, HOST_B_MAC,
                         dict(plane_b_kwargs or {})),
            ],
            costs=costs, n_cores=n_cores, link_rate_bps=link_rate_bps,
        )

    @property
    def host_a(self) -> HostStack:
        return self.hosts[0]

    @property
    def host_b(self) -> HostStack:
        return self.hosts[1]
