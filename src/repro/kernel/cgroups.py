"""Control groups, as used by `tc` classification (net_cls-style classids).

The QoS scenario in §2 moves the game into its own cgroup and shapes it with
tc — so the cgroup tree maps processes to classids that qdiscs and the
SmartNIC scheduler classify on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import KernelError
from .process import Process


class Cgroup:
    """One node in the cgroup hierarchy."""

    def __init__(self, path: str, classid: int):
        self.path = path
        self.classid = classid
        self.pids: "set[int]" = set()

    def __repr__(self) -> str:
        return f"<Cgroup {self.path} classid={self.classid:#x} pids={sorted(self.pids)}>"


class CgroupTree:
    """Flat-path cgroup registry with net_cls classids.

    Paths are ``/``-rooted (``"/games"``). The root group always exists with
    classid 0 (unclassified).
    """

    ROOT = "/"

    def __init__(self) -> None:
        self._groups: Dict[str, Cgroup] = {self.ROOT: Cgroup(self.ROOT, 0)}
        self._pid_group: Dict[int, str] = {}
        self._next_classid = 0x1_0001  # tc-style major:minor starting at 1:1

    def create(self, path: str) -> Cgroup:
        if not path.startswith("/") or path == self.ROOT:
            raise KernelError(f"invalid cgroup path: {path!r}")
        if path in self._groups:
            raise KernelError(f"cgroup {path!r} already exists")
        group = Cgroup(path, self._next_classid)
        self._next_classid += 1
        self._groups[path] = group
        return group

    def get(self, path: str) -> Cgroup:
        if path not in self._groups:
            raise KernelError(f"no such cgroup: {path!r}")
        return self._groups[path]

    def assign(self, proc: Process, path: str) -> None:
        group = self.get(path)
        old = self._pid_group.get(proc.pid)
        if old is not None:
            self._groups[old].pids.discard(proc.pid)
        group.pids.add(proc.pid)
        self._pid_group[proc.pid] = path
        proc.cgroup_path = path

    def group_of(self, pid: int) -> Cgroup:
        return self._groups[self._pid_group.get(pid, self.ROOT)]

    def classid_of(self, pid: int) -> int:
        return self.group_of(pid).classid

    def groups(self) -> List[Cgroup]:
        return list(self._groups.values())

    def by_classid(self, classid: int) -> Optional[Cgroup]:
        for group in self._groups.values():
            if group.classid == classid:
                return group
        return None
