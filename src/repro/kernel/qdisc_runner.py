"""Paced qdisc drain.

A qdisc only produces fairness/shaping if it is drained at the link rate —
draining instantly into a deep FIFO would erase the contention the policy is
supposed to arbitrate. The runner dequeues one packet, emits it, and comes
back after that packet's serialization time; for rate-limited qdiscs (TBF)
it sleeps until the bucket refills. Both the software kernel and the
SmartNIC scheduler drive their qdiscs with this runner.
"""

from __future__ import annotations

from typing import Callable, Optional

from .. import units
from ..errors import PolicyError
from ..sim import MetricSet, Simulator
from ..net.packet import Packet
from ..trace import STAGE_QDISC, charge
from .qdisc import DEFAULT_CLASS, Qdisc

EmitFn = Callable[[Packet], None]


class PacedQdiscRunner:
    """Drains a qdisc at ``drain_rate_bps`` into ``emit``."""

    def __init__(
        self,
        sim: Simulator,
        qdisc: Qdisc,
        drain_rate_bps: int,
        emit: EmitFn,
        name: str = "qdisc",
    ):
        if drain_rate_bps <= 0:
            raise PolicyError(f"drain rate must be positive: {drain_rate_bps}")
        self.sim = sim
        self.qdisc = qdisc
        self.drain_rate_bps = drain_rate_bps
        self.emit = emit
        self.metrics = MetricSet(name)
        self.point = None  # Optional[InterpositionPoint], set at registration
        self._busy_until = 0
        self._armed = False
        #: Hybrid-fidelity boundary: when the backlog crosses this many
        #: packets, ``on_backlog_pressure`` fires once (re-armed after the
        #: queue drains below half the threshold). Wired by dataplanes when
        #: fast-forward is on; None otherwise.
        self.backlog_demote_threshold: Optional[int] = None
        self.on_backlog_pressure: Optional[Callable[[], None]] = None
        self._pressure_flagged = False

    def submit(self, pkt: Packet, cls: str = DEFAULT_CLASS) -> bool:
        """Enqueue and make sure the drain loop is running."""
        accepted = self.qdisc.enqueue(pkt, cls)
        if self.point is not None:
            self.point.record_eval(hit=(cls != DEFAULT_CLASS), dropped=not accepted)
        if accepted:
            pkt.meta.enqueued_ns = self.sim.now
            self.metrics.counter("enqueued").inc()
            self._arm(self.sim.now)
            if (
                self.backlog_demote_threshold is not None
                and not self._pressure_flagged
                and self.qdisc.backlog >= self.backlog_demote_threshold
            ):
                self._pressure_flagged = True
                self.metrics.counter("pressure_events").inc()
                if self.on_backlog_pressure is not None:
                    self.on_backlog_pressure()
        else:
            self.metrics.counter("dropped").inc()
        return accepted

    def note_fluid(self, n: int) -> None:
        """Bulk accounting for ``n`` fast-forwarded packets that each would
        have transited the discipline with zero residency: a fluid TX epoch
        only exists while the backlog boundary is quiescent, so enqueue and
        emit collapse to counters and a zero-residency histogram weight."""
        if self.point is not None:
            self.point.record_eval(n=n)
        self.metrics.counter("enqueued").inc(n)
        self.metrics.counter("emitted").inc(n)
        self.metrics.histogram("queue_ns").observe(0, n=n)

    def replace_qdisc(self, qdisc: Qdisc) -> None:
        """Swap the discipline (tc qdisc replace). Packets queued in the old
        discipline are dropped, as with tc. The swap is one reference
        assignment: atomic by construction — a commit, when the runner is
        registered as an interposition point."""
        lost = self.qdisc.backlog
        if lost:
            self.metrics.counter("reset_dropped").inc(lost)
        self.qdisc = qdisc
        if self.point is not None:
            self.point.record_update()

    def _arm(self, at_ns: int) -> None:
        if self._armed:
            return
        self._armed = True
        self.sim.at(max(at_ns, self._busy_until, self.sim.now), self._tick)

    def _tick(self) -> None:
        self._armed = False
        now = self.sim.now
        pkt = self.qdisc.dequeue(now)
        if pkt is not None:
            self.metrics.counter("emitted").inc()
            self.metrics.histogram("queue_ns").observe(now - pkt.meta.enqueued_ns)
            # Queue residency: elapsed wall time in the discipline, charged
            # as non-CPU qdisc time on the packet's trace (if any).
            charge(STAGE_QDISC, now - pkt.meta.enqueued_ns, pkt.meta.trace,
                   cpu=False, label="queue_wait")
            self.emit(pkt)
            if (
                self._pressure_flagged
                and self.backlog_demote_threshold is not None
                and self.qdisc.backlog <= self.backlog_demote_threshold // 2
            ):
                self._pressure_flagged = False
            ser = units.transmit_time_ns(pkt.wire_len, self.drain_rate_bps)
            self._busy_until = now + ser
            self._arm(self._busy_until)
            return
        nxt: Optional[int] = self.qdisc.next_ready_ns(now)
        if nxt is not None:
            self._arm(max(nxt, now + 1))

    @property
    def backlog(self) -> int:
        return self.qdisc.backlog
