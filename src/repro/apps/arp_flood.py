"""The buggy ARP flooder — "based on a true story from our research lab"
(§2, footnote 2)."""

from __future__ import annotations

from typing import Generator

from ..errors import UnsupportedOperation
from ..net.addresses import IPv4Address
from ..net.packet import make_arp_request
from ..dataplanes.testbed import HOST_IP, HOST_MAC, Testbed
from .base import App


class ArpFlooder(App):
    """An application with a broken ARP implementation: it re-requests the
    same address in a tight loop, with a bogus source MAC.

    Only possible on dataplanes that allow raw injection (bypass,
    hypervisor, KOPI); on the kernel path ``send_raw`` refuses — the kernel
    owns ARP.
    """

    def __init__(self, testbed: Testbed, user: str, count: int = 50,
                 gap_ns: int = 10_000, comm: str = "cachesrv", **kwargs):
        super().__init__(testbed, comm=comm, user=user, **kwargs)
        self.count = count
        self.gap_ns = gap_ns
        self.sent = 0
        self.refused = False

    def run(self) -> Generator:
        target = IPv4Address.parse("10.0.0.250")  # never answers
        for _ in range(self.count):
            frame = make_arp_request(HOST_MAC, HOST_IP, target)
            try:
                yield self.ep.send_raw(frame)
            except UnsupportedOperation:
                self.refused = True
                return
            self.sent += 1
            yield self.gap_ns
