"""E1 — §1 overhead claim: kernel stack ≪ bypass ≈ KOPI."""

from repro.experiments.common import fmt_table
from repro.experiments.e1_dataplane_overhead import headline, run_e1


def test_e1_dataplane_overhead(once):
    rows = once(run_e1, count=200)
    print("\n" + fmt_table(rows))
    h = headline(rows)
    print(f"kernel/bypass cpu ratio: {h['kernel_vs_bypass_cpu_ratio']:.1f}x; "
          f"kopi/bypass: {h['kopi_vs_bypass_cpu_ratio']:.2f}x")
    # Paper shape: kernel an order of magnitude costlier; KOPI ~ bypass.
    assert h["kernel_vs_bypass_cpu_ratio"] > 5
    assert h["kopi_vs_bypass_cpu_ratio"] < 1.5
    assert h["kopi_goodput_gbps"] > 5 * h["kernel_goodput_gbps"]
