"""E12 — batching: which per-packet overheads amortize, and which cannot.

Sweeps burst size across every dataplane with the whole stack in burst
mode: the sender submits batches, rings move descriptor bursts under one
doorbell, the kernel charges one sendmmsg crossing per batch, and the NIC
coalesces interrupts. The shape the cost model predicts:

* ring-based planes (kernel, bypass, hypervisor, KOPI) amortize their
  fixed per-call costs — syscall crossing, MMIO doorbell, DMA setup — so
  per-packet CPU falls monotonically with batch size;
* the sidecar's dominant cost is *physical* data movement (cache-coherence
  traffic to the dedicated core), which is per-byte and does not amortize —
  batching barely moves its per-packet cost, which is §1's argument that
  moving packets to another core is the one overhead batching cannot buy
  back;
* latency rises with batch size (packets wait for their burst) — the
  classic throughput/latency trade, visible in the p99 column.

Latency percentiles come from a bounded reservoir histogram, so the sweep's
memory stays flat no matter how long the runs get.
"""

from __future__ import annotations

from typing import Dict, List

from .. import units
from ..config import DEFAULT_COSTS, CostModel
from ..sim import Histogram
from .common import Row, fmt_table, planes_under_test, run_burst_tx

BATCHES = (1, 4, 16, 32, 64)
PAYLOAD = 1_458
DEFAULT_COUNT = 320  # divisible by every batch size: only full bursts

#: Planes whose fixed per-call costs sit on the app's critical path and
#: therefore must amortize (monotone non-increasing per-packet CPU).
RING_PLANES = ("kernel", "bypass", "hypervisor", "kopi")

COLUMNS = [
    "plane", "batch", "delivered", "goodput_gbps",
    "app_cpu_ns_per_pkt", "host_cpu_ns_per_pkt",
    "lat_p50_us", "lat_p99_us", "virtual_per_pkt",
]


def run_e12(
    count: int = DEFAULT_COUNT,
    batches: "tuple[int, ...]" = BATCHES,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Row]:
    rows: List[Row] = []
    for plane_cls in planes_under_test():
        for batch in batches:
            hist = Histogram(f"{plane_cls.name}.latency", max_samples=256)
            row = run_burst_tx(
                plane_cls, PAYLOAD, count, batch, costs=costs, latency_hist=hist
            )
            moves = row.pop("movements")
            row["virtual_per_pkt"] = moves["virtual"] / count
            row["lat_p50_us"] = hist.percentile(50) / units.US
            row["lat_p99_us"] = hist.percentile(99) / units.US
            rows.append(row)
    return rows


def amortization(rows: List[Row]) -> Dict[str, Dict[str, object]]:
    """Per plane: per-packet CPU at the smallest and largest batch, the
    resulting amortization ratio, and whether the curve is monotone
    non-increasing in batch size."""
    by_plane: Dict[str, List[Row]] = {}
    for row in rows:
        by_plane.setdefault(str(row["plane"]), []).append(row)
    out: Dict[str, Dict[str, object]] = {}
    for plane, prows in by_plane.items():
        prows = sorted(prows, key=lambda r: int(r["batch"]))
        cpus = [float(r["app_cpu_ns_per_pkt"]) for r in prows]
        out[plane] = {
            "cpu_batch_min": cpus[0],
            "cpu_batch_max": cpus[-1],
            "amortization_x": cpus[0] / cpus[-1] if cpus[-1] else float("inf"),
            "monotone_decreasing": all(b <= a for a, b in zip(cpus, cpus[1:])),
        }
    return out


def headline(rows: List[Row]) -> Dict[str, object]:
    amort = amortization(rows)
    return {
        "ring_planes_monotone": all(
            amort[p]["monotone_decreasing"] for p in RING_PLANES if p in amort
        ),
        "kernel_amortization_x": amort.get("kernel", {}).get("amortization_x", 0.0),
        "bypass_amortization_x": amort.get("bypass", {}).get("amortization_x", 0.0),
        "sidecar_amortization_x": amort.get("sidecar", {}).get("amortization_x", 0.0),
    }


def main() -> str:
    rows = run_e12()
    lines = [fmt_table(rows, columns=COLUMNS), ""]
    amort = amortization(rows)
    for plane, a in amort.items():
        arrow = "monotone" if a["monotone_decreasing"] else "NON-monotone"
        lines.append(
            f"{plane:<11} cpu/pkt {a['cpu_batch_min']:.1f} -> {a['cpu_batch_max']:.1f} ns "
            f"({a['amortization_x']:.2f}x, {arrow})"
        )
    summary = headline(rows)
    lines.append("")
    lines.append(
        "headline: batching buys back "
        f"{summary['kernel_amortization_x']:.2f}x on the kernel path and "
        f"{summary['bypass_amortization_x']:.2f}x on bypass, but only "
        f"{summary['sidecar_amortization_x']:.2f}x on the sidecar — physical "
        "movement does not amortize"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
