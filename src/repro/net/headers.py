"""Protocol headers: Ethernet, ARP, IPv4, TCP, UDP.

Headers are real enough to serialize: ``to_bytes`` produces wire-format
bytes (with correct checksums for IPv4), which is what lets the tcpdump
analogue emit genuine pcap files.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, fields, replace
from typing import Optional

from ..errors import PacketError
from .addresses import BROADCAST_MAC, IPv4Address, MacAddress
from .checksum import internet_checksum

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

PROTO_TCP = 6
PROTO_UDP = 17

ARP_OP_REQUEST = 1
ARP_OP_REPLY = 2

ETH_HEADER_LEN = 14
ARP_BODY_LEN = 28
IPV4_HEADER_LEN = 20
TCP_HEADER_LEN = 20
UDP_HEADER_LEN = 8

TCP_FLAG_FIN = 0x01
TCP_FLAG_SYN = 0x02
TCP_FLAG_RST = 0x04
TCP_FLAG_PSH = 0x08
TCP_FLAG_ACK = 0x10


def _check_u16(name: str, value: int) -> None:
    if not 0 <= value <= 0xFFFF:
        raise PacketError(f"{name} out of range: {value}")


def _slotted(cls):
    """Rebuild a dataclass with ``__slots__`` (``slots=True`` needs 3.10+).

    Headers are allocated per packet on the hot path; slots cut the per-
    instance dict. Field defaults survive in ``__init__``'s signature, so
    the class-level attributes that would collide with slots can go.
    """
    cls_dict = dict(cls.__dict__)
    field_names = tuple(f.name for f in fields(cls))
    cls_dict["__slots__"] = field_names
    for name in field_names:
        cls_dict.pop(name, None)
    cls_dict.pop("__dict__", None)
    cls_dict.pop("__weakref__", None)
    new_cls = type(cls.__name__, cls.__bases__, cls_dict)
    new_cls.__qualname__ = cls.__qualname__
    return new_cls


@_slotted
@dataclass(frozen=True)
class EthernetHeader:
    dst: MacAddress
    src: MacAddress
    ethertype: int = ETHERTYPE_IPV4

    def __post_init__(self) -> None:
        _check_u16("ethertype", self.ethertype)

    def to_bytes(self) -> bytes:
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack("!H", self.ethertype)

    @property
    def wire_len(self) -> int:
        return ETH_HEADER_LEN


@_slotted
@dataclass(frozen=True)
class ArpHeader:
    """IPv4-over-Ethernet ARP body."""

    op: int
    sender_mac: MacAddress
    sender_ip: IPv4Address
    target_mac: MacAddress = BROADCAST_MAC
    target_ip: IPv4Address = IPv4Address(0)

    def __post_init__(self) -> None:
        if self.op not in (ARP_OP_REQUEST, ARP_OP_REPLY):
            raise PacketError(f"unknown ARP op: {self.op}")

    def to_bytes(self) -> bytes:
        return (
            struct.pack("!HHBBH", 1, ETHERTYPE_IPV4, 6, 4, self.op)
            + self.sender_mac.to_bytes()
            + self.sender_ip.to_bytes()
            + (b"\x00" * 6 if self.op == ARP_OP_REQUEST else self.target_mac.to_bytes())
            + self.target_ip.to_bytes()
        )

    @property
    def wire_len(self) -> int:
        return ARP_BODY_LEN


@_slotted
@dataclass(frozen=True)
class Ipv4Header:
    src: IPv4Address
    dst: IPv4Address
    proto: int
    payload_len: int = 0
    ttl: int = 64
    dscp: int = 0
    ident: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.proto <= 0xFF:
            raise PacketError(f"proto out of range: {self.proto}")
        if not 0 <= self.ttl <= 0xFF:
            raise PacketError(f"ttl out of range: {self.ttl}")
        if self.payload_len < 0:
            raise PacketError(f"negative payload: {self.payload_len}")
        _check_u16("total length", self.total_length)

    @property
    def total_length(self) -> int:
        return IPV4_HEADER_LEN + self.payload_len

    def to_bytes(self) -> bytes:
        without_cksum = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,  # version + IHL
            self.dscp << 2,
            self.total_length,
            self.ident,
            0,  # flags/frag
            self.ttl,
            self.proto,
            0,  # checksum placeholder
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )
        cksum = internet_checksum(without_cksum)
        return without_cksum[:10] + struct.pack("!H", cksum) + without_cksum[12:]

    def decrement_ttl(self) -> "Ipv4Header":
        if self.ttl == 0:
            raise PacketError("TTL already zero")
        return replace(self, ttl=self.ttl - 1)

    @property
    def wire_len(self) -> int:
        return IPV4_HEADER_LEN


@_slotted
@dataclass(frozen=True)
class TcpHeader:
    sport: int
    dport: int
    seq: int = 0
    ack: int = 0
    flags: int = TCP_FLAG_ACK
    window: int = 0xFFFF

    def __post_init__(self) -> None:
        _check_u16("sport", self.sport)
        _check_u16("dport", self.dport)
        if not 0 <= self.seq < 1 << 32 or not 0 <= self.ack < 1 << 32:
            raise PacketError("seq/ack out of range")

    def to_bytes(self) -> bytes:
        return struct.pack(
            "!HHIIBBHHH",
            self.sport,
            self.dport,
            self.seq,
            self.ack,
            5 << 4,  # data offset
            self.flags,
            self.window,
            0,  # checksum omitted (simulation payloads are synthetic)
            0,  # urgent
        )

    def has_flag(self, flag: int) -> bool:
        return bool(self.flags & flag)

    @property
    def wire_len(self) -> int:
        return TCP_HEADER_LEN


@_slotted
@dataclass(frozen=True)
class UdpHeader:
    sport: int
    dport: int
    payload_len: int = 0

    def __post_init__(self) -> None:
        _check_u16("sport", self.sport)
        _check_u16("dport", self.dport)
        _check_u16("udp length", self.length)

    @property
    def length(self) -> int:
        return UDP_HEADER_LEN + self.payload_len

    def to_bytes(self) -> bytes:
        return struct.pack("!HHHH", self.sport, self.dport, self.length, 0)

    @property
    def wire_len(self) -> int:
        return UDP_HEADER_LEN


@_slotted
@dataclass
class PacketMeta:
    """Mutable per-packet metadata carried alongside the headers.

    ``owner_pid``/``owner_uid``/``owner_comm`` are *host-side truth* attached
    when a packet is attributed by an on-host interposition layer. Off-host
    observers (network, hypervisor) never see these fields populated — that
    asymmetry is the paper's core argument and the capability matrix tests
    assert it.
    """

    created_ns: int = 0
    enqueued_ns: int = 0
    delivered_ns: int = 0
    ingress_port: Optional[int] = None
    queue_id: Optional[int] = None
    conn_id: Optional[int] = None
    owner_pid: Optional[int] = None
    owner_uid: Optional[int] = None
    owner_comm: Optional[str] = None
    # Host-side tenant attribution (repro.host.tenants), stamped at the
    # same sites as the owner fields when CostModel.tenants is on.
    tenant_tid: Optional[int] = None
    notes: dict = field(default_factory=dict)
    # The packet's TraceContext when tracing is on (repro.trace), else None.
    # Typed as object to keep the wire-format layer free of tracing imports.
    trace: Optional[object] = None
