"""ifconfig and arp analogues.

``Arp`` prints the kernel's ARP view — the first thing Alice checks in the
§2 debugging scenario. Under kernel bypass it is empty no matter how much
ARP the host emits; under KOPI the NIC repopulates it, with the owning pid
when the frame left an application ring.
"""

from __future__ import annotations

from typing import List

from .. import units
from ..dataplanes.base import Dataplane


class Ifconfig:
    def __init__(self, dataplane: Dataplane, kernel):
        self.dataplane = dataplane
        self.kernel = kernel

    def __call__(self) -> str:
        nic = getattr(self.dataplane, "nic", None)
        lines = [
            f"nic0: flags=UP  mtu 1500",
            f"        inet {self.kernel.host_ip}  ether {self.kernel.host_mac}",
        ]
        if nic is not None:
            stats = nic.stats()
            rx = int(stats.get(f"{nic.name}.rx_pkts", 0))
            tx = int(stats.get(f"{nic.name}.tx_pkts", 0))
            lines.append(f"        RX packets {rx}  TX packets {tx}")
        return "\n".join(lines)


class Arp:
    def __init__(self, dataplane: Dataplane):
        self.dataplane = dataplane

    def __call__(self) -> str:
        entries = self.dataplane.arp_entries()
        if not entries:
            return "arp: no entries"
        lines: List[str] = []
        for e in entries:
            line = f"{e.ip}  at  {e.mac}  updated {units.fmt_time(e.updated_ns)}"
            if e.source_pid is not None:
                line += f"  [pid={e.source_pid}]"
            lines.append(line)
        return "\n".join(lines)

    def count(self) -> int:
        return len(self.dataplane.arp_entries())
