"""Cluster scale-out: the in-switch L4 balancer and live flow migration.

The rack stops being a two-host testbed and becomes N backends behind a
VIP: :class:`L4LoadBalancer` is the switch's consistent-hashing nhop
stage (steering changes are versioned policy commits), and
:class:`MigrationCoordinator` moves a live flow — conntrack entry,
fastpath verdicts, fluid-epoch demotion, atomic re-steer — from one
backend to another without losing a packet or a counter tick.
"""

from .balancer import (
    VIP_OUI,
    HashRing,
    L4LoadBalancer,
    VirtualService,
    vip_mac,
)
from .migration import (
    MIGRATION_COMMITTED,
    MIGRATION_DONE,
    MIGRATION_PENDING,
    FlowMigration,
    MigrationCoordinator,
)

__all__ = [
    "VIP_OUI",
    "HashRing",
    "L4LoadBalancer",
    "VirtualService",
    "vip_mac",
    "FlowMigration",
    "MigrationCoordinator",
    "MIGRATION_PENDING",
    "MIGRATION_COMMITTED",
    "MIGRATION_DONE",
]
