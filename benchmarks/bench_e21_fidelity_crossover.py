"""E21 — fidelity-crossover bench: hybrid fast-forward must be invisible
in the observables and decisively faster at scale.

Replays both legs of the crossover experiment and asserts the acceptance
shape:

* Parity: exact and hybrid runs of the *identical* schedule agree — the
  counted observables (delivered, RX, fastpath hits/misses, DMA) match
  exactly, modeled time and every trace stage land within the pinned
  ``ff_tolerance``, and conservation holds on both legs.
* Crossover: at 100k+ connections the hybrid leg delivers packets at
  >= 20x the packet-exact rate (delivered-packets-per-wall-second, exact
  probe measured at the same structure scale).

Writes ``e21_fidelity_crossover.json`` next to the E12–E16 artifacts and
the consolidated ``BENCH_PR6.json`` (events fired + wall seconds for the
E8/E15/E16/E21 replays). The consolidated pass doubles as a regression
gate: if the exact-mode E8 replay's events/s dropped more than 10%
against the ``BENCH_PR5.json`` baseline, the hybrid machinery leaked
cost into the default path — fail. (Skipped when no baseline exists.)
"""

import json
import time
from pathlib import Path

from repro.experiments import e8_connection_scaling as e8
from repro.experiments.common import fmt_table
from repro.experiments.e15_flow_fastpath import run_e15_planes
from repro.experiments.e16_latency_anatomy import run_e16
from repro.experiments.e21_fidelity_crossover import (
    PARITY_COLUMNS,
    headline,
    run_parity,
    run_speedup,
)
from repro.sim import Simulator

ARTIFACT = Path(__file__).parent / "artifacts" / "e21_fidelity_crossover.json"
CONSOLIDATED = Path(__file__).parent / "artifacts" / "BENCH_PR6.json"
PR5_BASELINE = Path(__file__).parent / "artifacts" / "BENCH_PR5.json"

MIN_SPEEDUP = 20.0
MAX_E8_REGRESSION = 0.10


def _metered(fn, *args, **kwargs):
    """Run ``fn`` and return (result, total events fired across every
    simulator it built, wall seconds) — bench-local instrumentation."""
    sims = []
    orig_init = Simulator.__init__

    def _tracking_init(self):
        orig_init(self)
        sims.append(self)

    Simulator.__init__ = _tracking_init
    t0 = time.perf_counter()
    try:
        result = fn(*args, **kwargs)
    finally:
        Simulator.__init__ = orig_init
    seconds = time.perf_counter() - t0
    return result, sum(s.events_fired for s in sims), seconds


def _crossover():
    parity = run_parity()
    speedup = run_speedup()
    return parity, speedup


def test_e21_fidelity_crossover(once):
    parity, speedup = once(_crossover)
    h = headline(parity, speedup)

    print("\n" + fmt_table(parity["rows"] + parity["stage_rows"],
                           columns=PARITY_COLUMNS))
    print("\n" + fmt_table([speedup]))
    print(f"\nheadline: parity_ok={h['parity_ok']} "
          f"max_rel_err={h['max_rel_err']:.4%} "
          f"fluid={h['fluid_fraction']:.0%} "
          f"speedup={h['speedup']:.1f}x @ {h['connections']:,} conns")

    # Acceptance: fidelity is invisible, and fast-forward actually pays.
    assert parity["ok"], parity["rows"] + parity["stage_rows"]
    for row in parity["rows"]:
        assert row["ok"], row
    # The hybrid leg really went fluid (warmup packets stay exact, so the
    # default 16-packet-per-flow parity schedule tops out under 50%).
    assert parity["fluid_fraction"] > 0.25
    assert speedup["promoted"] == speedup["connections"]
    assert speedup["speedup"] >= MIN_SPEEDUP, speedup

    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(
        json.dumps(
            {"headline": h, "parity": parity["rows"],
             "stages": parity["stage_rows"], "speedup": speedup,
             "ff": parity["ff"]},
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {ARTIFACT}")


def test_bench_pr6_consolidated(once):
    """One artifact comparing the replay cost of the suite's heavy
    experiments on this tree — and the regression gate proving the
    hybrid engine costs the exact path nothing."""
    entries = {}
    _, ev, s = _metered(e8.run_e8, sweep=(256, 1_024), packets_per_point=4_096)
    entries["e8"] = {"events": ev, "seconds": s}
    _, ev, s = _metered(run_e15_planes, count=192)
    entries["e15"] = {"events": ev, "seconds": s}
    _, ev, s = _metered(run_e16, count=192)
    entries["e16"] = {"events": ev, "seconds": s}
    parity, ev, s = _metered(once, run_parity)
    entries["e21"] = {
        "events": ev, "seconds": s,
        "parity_ok": bool(parity["ok"]),
        "fluid_fraction": parity["fluid_fraction"],
    }

    CONSOLIDATED.parent.mkdir(parents=True, exist_ok=True)
    CONSOLIDATED.write_text(json.dumps(entries, indent=2) + "\n")
    for name, e in entries.items():
        print(f"{name}: {e['events']} events in {e['seconds']:.2f}s")
    print(f"wrote {CONSOLIDATED}")

    # Exact-mode regression gate: E8 runs with fast_forward off, so its
    # events/s measures the default path the hybrid engine must not slow.
    if not PR5_BASELINE.exists():
        print(f"{PR5_BASELINE.name} absent; skipping exact-mode "
              f"E8 regression check")
        return
    base = json.loads(PR5_BASELINE.read_text()).get("e8")
    if not base or not base.get("seconds"):
        print(f"{PR5_BASELINE.name} has no usable e8 entry; skipping")
        return
    base_rate = base["events"] / base["seconds"]
    cur_rate = entries["e8"]["events"] / entries["e8"]["seconds"]
    drop = 1.0 - cur_rate / base_rate
    print(f"e8 exact-mode: {cur_rate:,.0f} events/s vs baseline "
          f"{base_rate:,.0f} ({drop:+.1%} drop)")
    assert drop <= MAX_E8_REGRESSION, (
        f"exact-mode E8 replay regressed {drop:.1%} "
        f"(> {MAX_E8_REGRESSION:.0%}) vs {PR5_BASELINE.name}"
    )
