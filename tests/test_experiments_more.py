"""Smoke coverage for the remaining experiment harnesses and the report."""

from repro.experiments.e5_port_partitioning import headline as e5_headline, run_e5
from repro.experiments.e9_resource_exhaustion import (
    run_adversary,
    run_capacity_sweep,
    run_fallback_penalty,
)
from repro.experiments.e11_shared_rings import run_e11
from repro.experiments.report import quick_report


class TestE5Full:
    def test_shape(self):
        rows = run_e5()
        by_plane = {r["plane"]: r for r in rows}
        assert by_plane["bypass"]["violations_delivered"] > 0
        assert by_plane["kopi"]["violations_delivered"] == 0
        assert by_plane["kopi"]["thief_bind_blocked"]
        assert by_plane["kernel"]["legit_served"] > 0


class TestE9Smoke:
    def test_capacity(self):
        rows = run_capacity_sweep()
        # Fallback grows monotonically with offered connections per SRAM size.
        for sram in {r["sram_kib"] for r in rows}:
            sub = sorted((r for r in rows if r["sram_kib"] == sram),
                         key=lambda r: r["offered_conns"])
            fallbacks = [r["fallback"] for r in sub]
            assert fallbacks == sorted(fallbacks)

    def test_penalty(self):
        rows = run_fallback_penalty(count=40)
        fast = next(r for r in rows if r["path"] == "fast path")
        slow = next(r for r in rows if r["path"] == "fallback")
        assert fast["goodput_gbps"] > slow["goodput_gbps"]

    def test_adversary(self):
        rows = run_adversary()
        assert rows[0]["victim_on_fallback"] and not rows[1]["victim_on_fallback"]


class TestE11Smoke:
    def test_shared_mode_flat(self):
        rows = run_e11(sweep=(2_048,), packets_per_point=2_048)
        shared = next(r for r in rows if r["mode"] == "shared")
        per_conn = next(r for r in rows if r["mode"] == "per-conn")
        assert shared["goodput_gbps"] >= per_conn["goodput_gbps"]


class TestReport:
    def test_quick_report_contains_all_sections(self):
        text = quick_report()
        for marker in ("E1", "E2", "E8", "F1", "kopi"):
            assert marker in text
