"""Norman library edge cases: closed endpoints, blocked writers, monitor
modes, fallback behaviour."""

import pytest

from repro import units
from repro.config import DEFAULT_COSTS
from repro.core import NormanOS
from repro.dataplanes import Testbed
from repro.dataplanes.testbed import PEER_IP
from repro.errors import EndpointClosed, KernelError, UnsupportedOperation, WouldBlock
from repro.net import PROTO_UDP, make_arp_request
from repro.sim import SimProcess


def build(**kwargs):
    tb = Testbed(NormanOS, **kwargs)
    proc = tb.spawn("app", "bob", core_id=1)
    return tb, proc


class TestClosedEndpoints:
    def test_send_after_close_returns_false(self):
        tb, proc = build()
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        results = []
        sig = ep.send(100, dst=(PEER_IP, 9000))
        ep.close()
        sig.add_callback(lambda s: results.append(s.value))
        tb.run_all()
        assert results == [False]

    def test_blocking_recv_fails_on_closed_endpoint(self):
        tb, proc = build()
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        ep.close()
        errs = []
        sig = ep.recv(blocking=True)
        sig.add_callback(lambda s: errs.append(type(s.exception)))
        tb.run_all()
        assert errs == [EndpointClosed]

    def test_close_is_idempotent(self):
        tb, proc = build()
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        ep.close()
        ep.close()  # no raise


class TestBlockedWriters:
    def test_double_blocked_writer_rejected(self):
        tb, proc = build()
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        tb.dataplane.control.block_on_tx(ep.conn, proc)
        other = tb.spawn("other", "bob", core_id=2)
        with pytest.raises(KernelError, match="blocked writer"):
            tb.dataplane.control.block_on_tx(ep.conn, other)

    def test_double_blocked_reader_rejected(self):
        tb, proc = build()
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        tb.dataplane.control.block_on_rx(ep.conn, proc)
        other = tb.spawn("other", "bob", core_id=2)
        with pytest.raises(KernelError, match="blocked reader"):
            tb.dataplane.control.block_on_rx(ep.conn, other)


class TestMonitorModes:
    def test_poll_mode_wakes_at_tick_boundary(self):
        tb, proc = build()
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        interval = 20 * units.US
        tb.dataplane.control.set_monitor_mode(proc.pid, "poll", interval)
        got = []

        def server():
            msg = yield ep.recv(blocking=True)
            got.append((tb.sim.now, msg))

        SimProcess(tb.sim, server())
        tb.sim.after(5_000, tb.peer.send_udp, 555, 7000, 100)
        tb.run_all()
        assert len(got) == 1
        # Wake happened at/after a scan-tick boundary, not instantly.
        when = got[0][0]
        assert when >= interval
        # Monitor core (core 0) did the scan work.
        assert tb.machine.cpus[0].busy_ns >= DEFAULT_COSTS.poll_iteration_ns

    def test_interrupt_mode_is_faster_than_polling(self):
        latencies = {}
        for mode, interval in (("interrupt", None), ("poll", 100 * units.US)):
            tb, proc = build()
            ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
            if interval:
                tb.dataplane.control.set_monitor_mode(proc.pid, mode, interval)
            got = []

            def server():
                yield ep.recv(blocking=True)
                got.append(tb.sim.now)

            SimProcess(tb.sim, server())
            tb.sim.after(1_000, tb.peer.send_udp, 555, 7000, 100)
            tb.run_all()
            latencies[mode] = got[0]
        assert latencies["interrupt"] < latencies["poll"]

    def test_mode_validation(self):
        tb, proc = build()
        with pytest.raises(KernelError):
            tb.dataplane.control.set_monitor_mode(proc.pid, "psychic")
        with pytest.raises(KernelError):
            tb.dataplane.control.set_monitor_mode(proc.pid, "poll", 0)


class TestFallbackEdges:
    def test_fallback_endpoint_refuses_raw_frames(self):
        tb = Testbed(NormanOS, smartnic_sram_bytes=1)
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        assert ep.conn.fallback
        from repro.dataplanes.testbed import HOST_IP, HOST_MAC

        with pytest.raises(UnsupportedOperation):
            ep.send_raw(make_arp_request(HOST_MAC, HOST_IP, PEER_IP))

    def test_fallback_nonblocking_recv(self):
        tb = Testbed(NormanOS, smartnic_sram_bytes=1)
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        errs = []
        sig = ep.recv(blocking=False)
        sig.add_callback(lambda s: errs.append(type(s.exception)))
        tb.run_all()
        assert errs == [WouldBlock]


class TestNetstackEdges:
    def test_second_blocking_reader_on_same_port_rejected(self):
        from repro.dataplanes import KernelPathDataplane

        tb = Testbed(KernelPathDataplane)
        a = tb.spawn("a", "bob", core_id=1)
        sock = tb.kernel.sockets.bind(a, PROTO_UDP, 7000)
        tb.kernel.netstack.recv(a, sock, blocking=True)
        b = tb.spawn("b", "bob", core_id=2)
        with pytest.raises(KernelError, match="blocked reader"):
            tb.kernel.netstack.recv(b, sock, blocking=True)

    def test_kernel_capture_writes_pcap(self):
        from repro.dataplanes import KernelPathDataplane
        from repro.net.pcap import read_pcap_summary

        tb = Testbed(KernelPathDataplane)
        proc = tb.spawn("app", "bob", core_id=1)
        session = tb.dataplane.start_capture()
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        ep.send(100, dst=(PEER_IP, 9000))
        tb.run_all()
        count, _ = read_pcap_summary(session.pcap.to_bytes())
        assert count == 1
