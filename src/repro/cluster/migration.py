"""Live flow migration between rack backends (``CostModel.flow_migration``).

Who owns a flow's interposition state when the dataplane spans machines?
The kernel-visible answer this module implements: state lives *with the
flow*, and moving the flow is a sequence of first-class policy commits on
both machines plus one atomic steering commit on the switch — never a
window where a packet meets half-moved state.

The protocol (:meth:`MigrationCoordinator.migrate`), modeled on two-phase
live migration:

1. **Demote & drain.** The source machine's fast-forward flows for the
   five-tuple (both directions) demote with the ``flow_migration``
   boundary reason — pending fluid epochs flush *before* any state is
   read, the PR 9 demote-before-boundary contract.
2. **First copy.** The source's conntrack entry is snapshotted (it keeps
   running) and *adopted* on the target — a policy commit on the target's
   engine whose epoch bump is exactly the PR 3/PR 4 invalidation contract
   crossing machines: anything the target had cached about this flow is
   now stale. The source's flow-fastpath verdicts are then replayed onto
   the target's cache, stamped with the target's fresh epoch and resolved
   against the target's own steering (its listener's conn), so the first
   re-steered packet is a warm fastpath hit.
3. **Atomic re-steer.** The balancer stages a per-flow override and
   submits it as an asynchronous commit; the nhop write lands after
   ``table_update_ns``. Until then every packet steers to the source
   under the complete old table (counted as stale evals); after, to the
   target. No packet ever sees a half-installed rule.
4. **Delta copy & release.** ``lb_migration_drain_ns`` after the commit
   — long enough for packets already in flight toward the source to land
   — the source serves nothing new. The packets it *did* serve since the
   first copy are reconciled into the target's entry as a counter delta,
   and the source's conntrack entry and cached verdicts are dropped
   (another pair of commits). Source + target now sum to exactly what a
   no-migration run would have counted: loss-free and
   counter-conserving by construction.

The flow then re-promotes on the target on its own: replayed verdicts
give immediate fastpath hits, the hit streak clears ``ff_promote_after``,
and the fluid epoch resumes on the new backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import PolicyError
from ..net.flow import FiveTuple
from ..sim import MetricSet
from ..sim.fastforward import REASON_MIGRATE
from .balancer import L4LoadBalancer

MIGRATION_PENDING = "pending"
MIGRATION_COMMITTED = "committed"
MIGRATION_DONE = "done"


@dataclass
class FlowMigration:
    """One migration's life-cycle record."""

    flow: FiveTuple
    source: str
    target: str
    requested_ns: int
    committed_ns: int = -1
    finalized_ns: int = -1
    status: str = MIGRATION_PENDING
    snap_packets: int = 0
    snap_bytes: int = 0
    delta_packets: int = 0
    delta_bytes: int = 0
    verdicts_replayed: int = 0
    ff_demoted: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def moved_packets(self) -> int:
        """Conntrack packets handed to the target (first copy + delta)."""
        return self.snap_packets + self.delta_packets

    @property
    def moved_bytes(self) -> int:
        return self.snap_bytes + self.delta_bytes


class MigrationCoordinator:
    """Drives live migrations over a rack's backends.

    Registered backends are the rack's :class:`HostStack` objects; the
    coordinator reaches their machine-level state (fast-forward
    controller, verdict cache) and NIC-level state (conntrack, steering)
    through the same attributes the admin tools use — there is no side
    channel, which is rather the point: everything it moves is state the
    interposition plane already owns."""

    def __init__(self, sim, costs, balancer: L4LoadBalancer):
        self.sim = sim
        self.costs = costs
        self.balancer = balancer
        self._backends: Dict[str, object] = {}
        self.migrations: List[FlowMigration] = []
        self.metrics = MetricSet("migration")

    def add_backend(self, name: str, stack) -> None:
        if name in self._backends:
            raise PolicyError(f"backend {name!r} already registered")
        self._backends[name] = stack

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _conntrack(stack):
        nic = getattr(stack.dataplane, "nic", None)
        return getattr(nic, "conntrack", None)

    @staticmethod
    def _steering(stack):
        nic = getattr(stack.dataplane, "nic", None)
        return getattr(nic, "steering", None)

    # -- the protocol ------------------------------------------------------

    def migrate(self, flow: FiveTuple, target: str) -> FlowMigration:
        """Begin migrating ``flow`` (a VIP-steered five-tuple) from its
        current backend to ``target``. Returns the migration record;
        completion is asynchronous (``status`` reaches ``"done"`` after
        the re-steer commit plus the drain window)."""
        source = self.balancer.backend_for(flow)
        if source is None:
            raise PolicyError(f"flow {flow} is not VIP-steered")
        if source == target:
            raise PolicyError(
                f"flow {flow} already lives on {target!r}")
        if target not in self._backends:
            raise PolicyError(f"unknown backend {target!r}")
        if source not in self._backends:
            raise PolicyError(f"source backend {source!r} not registered")
        src, dst = self._backends[source], self._backends[target]
        m = FlowMigration(flow=flow, source=source, target=target,
                          requested_ns=self.sim.now)
        self.migrations.append(m)
        self.metrics.counter("started").inc()

        # 1. Demote & drain: the source's fluid epochs flush before any
        #    state is read (demote-before-boundary).
        ff = src.machine.ff
        if ff is not None:
            for key in (flow, flow.reversed()):
                if ff.demote(key, REASON_MIGRATE):
                    m.ff_demoted += 1

        # 2. First copy: conntrack snapshot adopted on the target (a
        #    target-engine policy commit — the cross-machine epoch bump),
        #    then verdict replay stamped with the target's fresh epoch.
        target_entry = None
        src_ct, dst_ct = self._conntrack(src), self._conntrack(dst)
        if src_ct is not None and dst_ct is not None:
            snap = src_ct.snapshot(flow)
            if snap is not None:
                m.snap_packets = snap["packets"]
                m.snap_bytes = snap["bytes"]
                target_entry = dst_ct.adopt(snap, self.sim.now)
                if target_entry is None:
                    m.notes.append("target SRAM exhausted; flow untracked")
        m.verdicts_replayed = self._replay_verdicts(src, dst, flow,
                                                    target_entry)

        # 3. Atomic re-steer: staged now, live after table_update_ns.
        done = self.balancer.commit_resteer(flow, target)
        done.add_callback(lambda _sig: self._committed(m))
        return m

    def _replay_verdicts(self, src, dst, flow: FiveTuple,
                         target_entry) -> int:
        src_fp = src.machine.fastpath
        dst_fp = dst.machine.fastpath
        if src_fp is None or dst_fp is None:
            return 0
        steering = self._steering(dst)
        target_conn = steering.peek(flow) if steering is not None else None
        replayed = 0
        for entry in src_fp.entries_for(flow):
            dst_fp.install(
                entry.chain, flow, scope=entry.scope, verdict=entry.verdict,
                qdisc_class=entry.qdisc_class, queue_id=entry.queue_id,
                conn_id=target_conn, ct_entry=target_entry,
                points=entry.points,
            )
            replayed += 1
        return replayed

    def _committed(self, m: FlowMigration) -> None:
        m.committed_ns = self.sim.now
        m.status = MIGRATION_COMMITTED
        self.metrics.counter("committed").inc()
        self.sim.after(self.costs.lb_migration_drain_ns, self._finalize, m)

    def _finalize(self, m: FlowMigration) -> None:
        """Delta copy + release: reconcile what the source served after
        the first copy into the target's entry, then drop source state."""
        src, dst = self._backends[m.source], self._backends[m.target]
        src_ct, dst_ct = self._conntrack(src), self._conntrack(dst)
        if src_ct is not None:
            final = src_ct.release_flow(m.flow)
            if final is not None and dst_ct is not None:
                m.delta_packets = final["packets"] - m.snap_packets
                m.delta_bytes = final["bytes"] - m.snap_bytes
                entry = dst_ct.lookup(m.flow)
                if entry is not None and (m.delta_packets or m.delta_bytes):
                    # The two-phase hand-off's final delta: packets the
                    # source served during the commit + drain window.
                    # Merged directly — not via adopt() — so the target's
                    # epoch does NOT bump and the replayed verdicts stay
                    # live.
                    entry.packets += m.delta_packets
                    entry.bytes += m.delta_bytes
                    entry.last_seen_ns = max(entry.last_seen_ns,
                                             final["last_seen_ns"])
                elif entry is None and (m.delta_packets or m.delta_bytes):
                    # The flow was untracked at first-copy time (migration
                    # raced the flow's very first packet, or target SRAM
                    # was exhausted then) and the target has not tracked it
                    # since: the delta IS the whole state — adopt it now so
                    # no packet the source served goes uncounted.
                    late = dict(final)
                    late["packets"] = m.delta_packets
                    late["bytes"] = m.delta_bytes
                    if dst_ct.adopt(late, self.sim.now) is None:
                        m.notes.append(
                            "target SRAM exhausted at delta copy; "
                            "flow untracked")
        elif src.machine.fastpath is not None:
            # No conntrack to do it for us: drop the source's verdicts.
            src.machine.fastpath.evict_flow(m.flow)
        m.finalized_ns = self.sim.now
        m.status = MIGRATION_DONE
        self.metrics.counter("finalized").inc()

    # -- observability -----------------------------------------------------

    def completed(self) -> List[FlowMigration]:
        return [m for m in self.migrations if m.status == MIGRATION_DONE]

    def stats(self) -> Dict[str, object]:
        return {
            "started": self.metrics.counter("started").value,
            "committed": self.metrics.counter("committed").value,
            "finalized": self.metrics.counter("finalized").value,
            "moved_packets": sum(m.moved_packets for m in self.migrations),
            "moved_bytes": sum(m.moved_bytes for m in self.migrations),
            "verdicts_replayed": sum(m.verdicts_replayed
                                     for m in self.migrations),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MigrationCoordinator backends={len(self._backends)} "
                f"migrations={len(self.migrations)}>")
