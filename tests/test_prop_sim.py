"""Property-based tests on the simulation engine's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


class TestEngineOrdering:
    @given(delays=st.lists(st.integers(0, 10_000), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.after(d, lambda d=d: fired.append((sim.now, d)))
        sim.run()
        times = [t for t, _d in fired]
        assert times == sorted(times)
        assert len(fired) == len(delays)
        for t, d in fired:
            assert t == d  # each fired exactly at its scheduled time

    @given(delays=st.lists(st.integers(0, 100), min_size=2, max_size=60))
    @settings(max_examples=100)
    def test_ties_fifo(self, delays):
        """Events at the same timestamp fire in insertion order."""
        sim = Simulator()
        fired = []
        for i, d in enumerate(delays):
            sim.after(d, lambda i=i: fired.append(i))
        sim.run()
        # Stable sort of indices by delay must equal the fire order.
        expected = [i for i, _d in sorted(enumerate(delays), key=lambda x: x[1])]
        assert fired == expected

    @given(
        delays=st.lists(st.integers(1, 1_000), min_size=1, max_size=50),
        cancel_mask=st.lists(st.booleans(), min_size=1, max_size=50),
    )
    @settings(max_examples=100)
    def test_cancelled_events_never_fire(self, delays, cancel_mask):
        sim = Simulator()
        fired = []
        handles = []
        for i, d in enumerate(delays):
            handles.append(sim.after(d, lambda i=i: fired.append(i)))
        for handle, cancel in zip(handles, cancel_mask):
            if cancel:
                handle.cancel()
        sim.run()
        cancelled = {i for i, c in enumerate(zip(handles, cancel_mask)) if c[1]}
        assert set(fired).isdisjoint(cancelled)
        assert len(fired) == len(delays) - len(
            [1 for h, c in zip(handles, cancel_mask) if c]
        )

    @given(
        first=st.lists(st.integers(0, 500), min_size=1, max_size=30),
        nested=st.integers(0, 500),
    )
    @settings(max_examples=50)
    def test_nested_scheduling_preserves_order(self, first, nested):
        """Events scheduled from inside callbacks still fire in time order."""
        sim = Simulator()
        fired = []

        def outer(d):
            fired.append(sim.now)
            sim.after(nested, lambda: fired.append(sim.now))

        for d in first:
            sim.after(d, outer, d)
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == 2 * len(first)


class TestHeapCompaction:
    """Lazy-cancel heap compaction must be invisible: firing order, FIFO
    ties, and the ``cancelled_pending`` books survive arbitrary
    schedule/cancel/peek interleavings straddling ``COMPACT_MIN_HEAP``."""

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["sched", "cancel", "peek"]),
                st.integers(0, 5_000),
            ),
            min_size=2 * Simulator.COMPACT_MIN_HEAP,
            max_size=5 * Simulator.COMPACT_MIN_HEAP,
        )
    )
    @settings(max_examples=60)
    def test_interleaved_cancels_preserve_semantics(self, ops):
        sim = Simulator()
        fired = []
        handles = []          # (index, delay, handle) in schedule order
        cancelled = set()
        for op, val in ops:
            if op == "sched" or not handles:
                i = len(handles)
                handles.append(
                    (i, val, sim.after(val, lambda i=i: fired.append(i)))
                )
            elif op == "cancel":
                i, _d, h = handles[val % len(handles)]
                h.cancel()    # may repeat: cancel() must be idempotent
                cancelled.add(i)
            else:
                # peek() drains cancelled heap heads as a side effect; it
                # must report the next *live* timestamp (delay == abs time
                # here, nothing has run yet) and keep the books balanced.
                t = sim.peek()
                live = [d for i, d, _h in handles if i not in cancelled]
                assert t == (min(live) if live else None)
            # The books at every step: pending counts lazily-cancelled
            # entries still in the heap, so live = pending - cancelled.
            assert 0 <= sim.cancelled_pending <= sim.pending
            assert (
                sim.pending - sim.cancelled_pending
                == len(handles) - len(cancelled)
            )
        sim.run()
        assert sim.pending == 0
        assert sim.cancelled_pending == 0
        survivors = [(i, d) for i, d, _h in handles if i not in cancelled]
        # Time order with FIFO ties == stable sort of survivors by delay,
        # no matter how many compactions rebuilt the heap along the way.
        assert fired == [i for i, _d in sorted(survivors, key=lambda x: x[1])]

    def test_compaction_fires_and_preserves_order(self):
        """Deterministic companion: force a compaction past the 50%%
        cancelled threshold and check the survivors still fire in order."""
        sim = Simulator()
        fired = []
        n = 100
        handles = [
            sim.after(1_000 - i, lambda i=i: fired.append(i)) for i in range(n)
        ]
        for h in handles[:70]:
            h.cancel()
        assert sim.heap_compactions >= 1
        assert sim.pending - sim.cancelled_pending == 30
        sim.run()
        # Survivors i=70..99 have delays 930..901: descending index order.
        assert fired == list(range(n - 1, 69, -1))
        assert sim.pending == 0
        assert sim.cancelled_pending == 0


class TestCalendarWindowProperties:
    """Delays past the calendar window exercise the far heap, rebase
    migration, and compaction across the boundary — none of which may
    perturb (time, seq) order."""

    @given(
        delays=st.lists(
            st.integers(0, 5 * 2_097_152),  # several calendar windows
            min_size=1, max_size=80,
        )
    )
    @settings(max_examples=60)
    def test_order_holds_across_the_window_boundary(self, delays):
        sim = Simulator()
        fired = []
        for i, d in enumerate(delays):
            sim.after(d, fired.append, (d, i))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        delays=st.lists(
            st.integers(1, 5 * 2_097_152),
            min_size=2 * Simulator.COMPACT_MIN_HEAP,
            max_size=3 * Simulator.COMPACT_MIN_HEAP,
        ),
        cancel_mask=st.lists(st.booleans(), min_size=1, max_size=192),
    )
    @settings(max_examples=40)
    def test_cancels_across_the_boundary_never_fire(self, delays, cancel_mask):
        sim = Simulator()
        fired = []
        handles = []
        for i, d in enumerate(delays):
            handles.append((i, sim.after(d, fired.append, i)))
        dropped = set()
        for j, flag in enumerate(cancel_mask):
            if flag and handles:
                i, h = handles[j % len(handles)]
                h.cancel()
                dropped.add(i)
        sim.run()
        assert set(fired) == set(range(len(delays))) - dropped
        assert sim.pending == 0
